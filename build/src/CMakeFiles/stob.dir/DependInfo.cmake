
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cca_guard.cpp" "src/CMakeFiles/stob.dir/core/cca_guard.cpp.o" "gcc" "src/CMakeFiles/stob.dir/core/cca_guard.cpp.o.d"
  "/root/repo/src/core/histogram.cpp" "src/CMakeFiles/stob.dir/core/histogram.cpp.o" "gcc" "src/CMakeFiles/stob.dir/core/histogram.cpp.o.d"
  "/root/repo/src/core/policies.cpp" "src/CMakeFiles/stob.dir/core/policies.cpp.o" "gcc" "src/CMakeFiles/stob.dir/core/policies.cpp.o.d"
  "/root/repo/src/core/policy_table.cpp" "src/CMakeFiles/stob.dir/core/policy_table.cpp.o" "gcc" "src/CMakeFiles/stob.dir/core/policy_table.cpp.o.d"
  "/root/repo/src/defenses/baselines.cpp" "src/CMakeFiles/stob.dir/defenses/baselines.cpp.o" "gcc" "src/CMakeFiles/stob.dir/defenses/baselines.cpp.o.d"
  "/root/repo/src/defenses/trace_defense.cpp" "src/CMakeFiles/stob.dir/defenses/trace_defense.cpp.o" "gcc" "src/CMakeFiles/stob.dir/defenses/trace_defense.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/CMakeFiles/stob.dir/net/packet.cpp.o" "gcc" "src/CMakeFiles/stob.dir/net/packet.cpp.o.d"
  "/root/repo/src/net/pipe.cpp" "src/CMakeFiles/stob.dir/net/pipe.cpp.o" "gcc" "src/CMakeFiles/stob.dir/net/pipe.cpp.o.d"
  "/root/repo/src/quic/quic_connection.cpp" "src/CMakeFiles/stob.dir/quic/quic_connection.cpp.o" "gcc" "src/CMakeFiles/stob.dir/quic/quic_connection.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/stob.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/stob.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/stack/host.cpp" "src/CMakeFiles/stob.dir/stack/host.cpp.o" "gcc" "src/CMakeFiles/stob.dir/stack/host.cpp.o.d"
  "/root/repo/src/stack/nic.cpp" "src/CMakeFiles/stob.dir/stack/nic.cpp.o" "gcc" "src/CMakeFiles/stob.dir/stack/nic.cpp.o.d"
  "/root/repo/src/stack/qdisc.cpp" "src/CMakeFiles/stob.dir/stack/qdisc.cpp.o" "gcc" "src/CMakeFiles/stob.dir/stack/qdisc.cpp.o.d"
  "/root/repo/src/stack/tls_record.cpp" "src/CMakeFiles/stob.dir/stack/tls_record.cpp.o" "gcc" "src/CMakeFiles/stob.dir/stack/tls_record.cpp.o.d"
  "/root/repo/src/tcp/bbr.cpp" "src/CMakeFiles/stob.dir/tcp/bbr.cpp.o" "gcc" "src/CMakeFiles/stob.dir/tcp/bbr.cpp.o.d"
  "/root/repo/src/tcp/congestion.cpp" "src/CMakeFiles/stob.dir/tcp/congestion.cpp.o" "gcc" "src/CMakeFiles/stob.dir/tcp/congestion.cpp.o.d"
  "/root/repo/src/tcp/cubic.cpp" "src/CMakeFiles/stob.dir/tcp/cubic.cpp.o" "gcc" "src/CMakeFiles/stob.dir/tcp/cubic.cpp.o.d"
  "/root/repo/src/tcp/reno.cpp" "src/CMakeFiles/stob.dir/tcp/reno.cpp.o" "gcc" "src/CMakeFiles/stob.dir/tcp/reno.cpp.o.d"
  "/root/repo/src/tcp/rtt.cpp" "src/CMakeFiles/stob.dir/tcp/rtt.cpp.o" "gcc" "src/CMakeFiles/stob.dir/tcp/rtt.cpp.o.d"
  "/root/repo/src/tcp/tcp_connection.cpp" "src/CMakeFiles/stob.dir/tcp/tcp_connection.cpp.o" "gcc" "src/CMakeFiles/stob.dir/tcp/tcp_connection.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "src/CMakeFiles/stob.dir/util/csv.cpp.o" "gcc" "src/CMakeFiles/stob.dir/util/csv.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/stob.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/stob.dir/util/log.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/stob.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/stob.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/stob.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/stob.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/units.cpp" "src/CMakeFiles/stob.dir/util/units.cpp.o" "gcc" "src/CMakeFiles/stob.dir/util/units.cpp.o.d"
  "/root/repo/src/wf/cumul.cpp" "src/CMakeFiles/stob.dir/wf/cumul.cpp.o" "gcc" "src/CMakeFiles/stob.dir/wf/cumul.cpp.o.d"
  "/root/repo/src/wf/decision_tree.cpp" "src/CMakeFiles/stob.dir/wf/decision_tree.cpp.o" "gcc" "src/CMakeFiles/stob.dir/wf/decision_tree.cpp.o.d"
  "/root/repo/src/wf/features.cpp" "src/CMakeFiles/stob.dir/wf/features.cpp.o" "gcc" "src/CMakeFiles/stob.dir/wf/features.cpp.o.d"
  "/root/repo/src/wf/kfp.cpp" "src/CMakeFiles/stob.dir/wf/kfp.cpp.o" "gcc" "src/CMakeFiles/stob.dir/wf/kfp.cpp.o.d"
  "/root/repo/src/wf/open_world.cpp" "src/CMakeFiles/stob.dir/wf/open_world.cpp.o" "gcc" "src/CMakeFiles/stob.dir/wf/open_world.cpp.o.d"
  "/root/repo/src/wf/random_forest.cpp" "src/CMakeFiles/stob.dir/wf/random_forest.cpp.o" "gcc" "src/CMakeFiles/stob.dir/wf/random_forest.cpp.o.d"
  "/root/repo/src/wf/trace.cpp" "src/CMakeFiles/stob.dir/wf/trace.cpp.o" "gcc" "src/CMakeFiles/stob.dir/wf/trace.cpp.o.d"
  "/root/repo/src/workload/bulk.cpp" "src/CMakeFiles/stob.dir/workload/bulk.cpp.o" "gcc" "src/CMakeFiles/stob.dir/workload/bulk.cpp.o.d"
  "/root/repo/src/workload/page_load.cpp" "src/CMakeFiles/stob.dir/workload/page_load.cpp.o" "gcc" "src/CMakeFiles/stob.dir/workload/page_load.cpp.o.d"
  "/root/repo/src/workload/website.cpp" "src/CMakeFiles/stob.dir/workload/website.cpp.o" "gcc" "src/CMakeFiles/stob.dir/workload/website.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
