#include "defenses/stack_mount.hpp"

#include <algorithm>

namespace stob::defenses {

void SegmentMount::on_flow_start(const net::FlowKey& /*flow*/) {
  if (!streaming_) {
    inner_->begin(rng_);
    streaming_ = true;
    last_event_time_ = 0.0;
  }
}

void SegmentMount::on_flow_end(const net::FlowKey& /*flow*/) {
  if (streaming_) {
    scratch_.clear();
    inner_->finish(last_event_time_, scratch_);
    for (const PacketOut& p : scratch_) dummy_suppressed_ += p.dummy ? 1 : 0;
    streaming_ = false;
  }
}

core::SegmentDecision SegmentMount::on_segment(const core::SegmentContext& ctx) {
  core::SegmentDecision d = core::SegmentDecision::passthrough(ctx);
  if (!streaming_) {  // policy hook used without a flow-start notification
    inner_->begin(rng_);
    streaming_ = true;
  }

  // Present the first wire packet of the segment as the policy's event.
  PacketEvent ev;
  ev.time = ctx.cca_departure.sec();
  ev.direction = +1;  // sender-side vantage: everything we emit is outgoing
  ev.size = std::min<std::int64_t>(ctx.mss.count(), ctx.cca_segment.count());
  last_event_time_ = ev.time;

  scratch_.clear();
  inner_->on_packet(ev, scratch_);

  const PacketOut* decision = nullptr;
  for (const PacketOut& p : scratch_) {
    if (p.dummy) {
      ++dummy_suppressed_;  // padding is not representable at this hook
    } else if (decision == nullptr) {
      decision = &p;
    }
  }
  if (decision == nullptr) {
    // The policy queued the payload for a later slot it has not emitted
    // yet; defer by one pacing quantum rather than dropping the segment.
    d.departure = ctx.cca_departure + Duration::millis(1);
    return d;
  }

  if (decision->time > ev.time) {
    d.departure = ctx.cca_departure + Duration::seconds_f(decision->time - ev.time);
  }
  if (decision->size > 0 && decision->size < ev.size) {
    d.wire_mss = Bytes(decision->size);
  }
  return d;
}

}  // namespace stob::defenses
