// PolicyTable — the "shared memory" policy region of §4.1.
//
// Obfuscation policies are installed by the application or administrator
// and consulted by the stack per flow. Instances can be shared between
// flows (e.g. all flows to the same destination host use one policy), which
// is exactly what this table models:
//
//   exact flow  >  destination host  >  table default  >  nullptr
//
// DispatchPolicy adapts the table to the transport's single Policy* hook:
// the connection keeps one pointer for its lifetime while the effective
// policy remains centrally managed and hot-swappable.
#pragma once

#include <memory>
#include <unordered_map>

#include "core/policy.hpp"

namespace stob::core {

class PolicyTable {
 public:
  /// Install a policy for every flow towards `dst`.
  void set_for_destination(net::HostId dst, std::shared_ptr<Policy> policy) {
    by_destination_[dst] = std::move(policy);
  }

  /// Install a policy for one exact flow (highest precedence).
  void set_for_flow(const net::FlowKey& flow, std::shared_ptr<Policy> policy) {
    by_flow_[flow] = std::move(policy);
  }

  /// Install the fallback policy used when nothing more specific matches.
  void set_default(std::shared_ptr<Policy> policy) { default_ = std::move(policy); }

  void clear_for_destination(net::HostId dst) { by_destination_.erase(dst); }
  void clear_for_flow(const net::FlowKey& flow) { by_flow_.erase(flow); }

  /// Resolve the effective policy for `flow`; may be nullptr (stock stack).
  Policy* lookup(const net::FlowKey& flow) const;

  std::size_t flow_entries() const { return by_flow_.size(); }
  std::size_t destination_entries() const { return by_destination_.size(); }

 private:
  std::unordered_map<net::FlowKey, std::shared_ptr<Policy>, net::FlowKeyHash> by_flow_;
  std::unordered_map<net::HostId, std::shared_ptr<Policy>> by_destination_;
  std::shared_ptr<Policy> default_;
};

/// Policy facade over a PolicyTable: resolves per segment, so installs and
/// removals take effect immediately for live flows.
class DispatchPolicy final : public Policy {
 public:
  explicit DispatchPolicy(const PolicyTable& table) : table_(table) {}

  SegmentDecision on_segment(const SegmentContext& ctx) override {
    Policy* p = table_.lookup(ctx.flow);
    return p != nullptr ? p->on_segment(ctx) : SegmentDecision::passthrough(ctx);
  }
  void on_flow_start(const net::FlowKey& flow) override {
    if (Policy* p = table_.lookup(flow)) p->on_flow_start(flow);
  }
  void on_flow_end(const net::FlowKey& flow) override {
    if (Policy* p = table_.lookup(flow)) p->on_flow_end(flow);
  }
  std::string name() const override { return "dispatch"; }

 private:
  const PolicyTable& table_;
};

}  // namespace stob::core
