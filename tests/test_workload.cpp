// Tests for the workload layer: site profiles, page plans, full page loads
// through the simulated stack, dataset collection, and bulk transfers.
#include <gtest/gtest.h>

#include <set>

#include "core/policies.hpp"
#include "workload/bulk.hpp"
#include "workload/page_load.hpp"
#include "workload/website.hpp"

namespace stob::workload {
namespace {

TEST(Sites, NineDistinctProfiles) {
  const auto& sites = nine_sites();
  ASSERT_EQ(sites.size(), 9u);
  std::set<std::string> names;
  for (const auto& s : sites) names.insert(s.name);
  EXPECT_EQ(names.size(), 9u);
  EXPECT_TRUE(names.count("wikipedia.org"));
  EXPECT_TRUE(names.count("youtube.com"));
}

TEST(PagePlan, SamplingWithinBounds) {
  Rng rng(1);
  for (const auto& site : nine_sites()) {
    for (int i = 0; i < 20; ++i) {
      const PagePlan plan = sample_page(site, rng);
      EXPECT_GE(plan.html_bytes, 2000);
      EXPECT_GE(plan.object_bytes.size(), 1u);
      EXPECT_EQ(plan.object_bytes.size(), plan.think_times.size());
      EXPECT_EQ(plan.object_bytes.size(), plan.request_bytes.size());
      for (std::int64_t b : plan.object_bytes) {
        EXPECT_GE(b, 400);
        EXPECT_LE(b, 8'000'000);
      }
      EXPECT_GT(plan.total_response_bytes(), plan.html_bytes);
    }
  }
}

TEST(PagePlan, SitesDifferInExpectedVolume) {
  Rng rng(2);
  auto mean_volume = [&](const SiteProfile& s) {
    double acc = 0;
    for (int i = 0; i < 30; ++i) acc += static_cast<double>(sample_page(s, rng).total_response_bytes());
    return acc / 30;
  };
  const auto& sites = nine_sites();
  double whatsapp = 0, youtube = 0;
  for (const auto& s : sites) {
    if (s.name == "whatsapp.net") whatsapp = mean_volume(s);
    if (s.name == "youtube.com") youtube = mean_volume(s);
  }
  EXPECT_GT(youtube, 4 * whatsapp);  // heavy site dwarfs the lean one
}

TEST(PageLoad, CompletesForEverySite) {
  PageLoadOptions opt;
  Rng rng(1234);
  for (const auto& site : nine_sites()) {
    Rng r = rng.fork();
    const PageLoadResult res = run_page_load(site, r, opt);
    EXPECT_TRUE(res.completed) << site.name;
    EXPECT_GT(res.trace.size(), 50u) << site.name;
    EXPECT_GT(res.page_load_time.sec(), 0.0) << site.name;
    EXPECT_LT(res.page_load_time.sec(), 30.0) << site.name;
    // The trace volume reflects the page volume (plus headers/ACKs).
    EXPECT_GT(res.trace.incoming_bytes(), res.response_bytes) << site.name;
    EXPECT_LT(res.trace.incoming_bytes(), res.response_bytes * 2) << site.name;
  }
}

TEST(PageLoad, DeterministicForSeed) {
  PageLoadOptions opt;
  const auto& site = nine_sites()[0];
  Rng r1(99), r2(99);
  const PageLoadResult a = run_page_load(site, r1, opt);
  const PageLoadResult b = run_page_load(site, r2, opt);
  EXPECT_EQ(a.trace.size(), b.trace.size());
  EXPECT_EQ(a.trace.packets(), b.trace.packets());
}

TEST(PageLoad, SamplesVaryWithinSite) {
  PageLoadOptions opt;
  const auto& site = nine_sites()[0];
  Rng rng(5);
  Rng r1 = rng.fork();
  Rng r2 = rng.fork();
  const PageLoadResult a = run_page_load(site, r1, opt);
  const PageLoadResult b = run_page_load(site, r2, opt);
  EXPECT_NE(a.trace.packets(), b.trace.packets());
}

TEST(PageLoad, ServerPolicyShapesTrace) {
  // With a split policy installed server-side, incoming wire packets stay
  // at or below half the MSS (+ headers).
  PageLoadOptions opt;
  core::SplitPolicy split;
  opt.server_conn.policy = &split;
  const auto& site = nine_sites()[7];  // wikipedia: small and fast
  Rng r(7);
  const PageLoadResult res = run_page_load(site, r, opt);
  ASSERT_TRUE(res.completed);
  std::int64_t max_in = 0;
  for (const auto& p : res.trace.packets()) {
    if (p.direction < 0) max_in = std::max(max_in, p.size);
  }
  EXPECT_LE(max_in, 724 + net::kEthIpTcpHeader);
}

TEST(CollectDataset, LabelsAndCounts) {
  PageLoadOptions opt;
  std::vector<SiteProfile> sites(nine_sites().begin(), nine_sites().begin() + 3);
  const wf::Dataset data = collect_dataset(sites, 2, 42, opt);
  ASSERT_EQ(data.size(), 6u);
  EXPECT_EQ(data.num_classes(), 3u);
  int per_class[3] = {0, 0, 0};
  for (std::size_t i = 0; i < data.size(); ++i) per_class[data.label(i)] += 1;
  for (int c : per_class) EXPECT_EQ(c, 2);
}

TEST(BulkTransfer, ReachesNearLineRateWithoutCpuModel) {
  BulkTransferOptions opt;
  opt.conn.cca = "bbr";
  opt.warmup = Duration::millis(15);
  opt.measure = Duration::millis(25);
  const BulkTransferResult res = run_bulk_transfer(opt);
  EXPECT_GT(res.goodput.gbps_f(), 70.0);
  EXPECT_GT(res.tso_segments, 0u);
}

TEST(BulkTransfer, CpuCostsCapThroughput) {
  BulkTransferOptions opt;
  opt.conn.cca = "bbr";
  opt.conn.tso_enabled = false;  // one stack traversal per MSS packet
  opt.sender_cpu = {Duration::nanos(550), Duration::nanos(15), 0.003};
  opt.warmup = Duration::millis(15);
  opt.measure = Duration::millis(25);
  const BulkTransferResult res = run_bulk_transfer(opt);
  // 1448 B per ~570 ns -> about 20 Gbps; far below the 100 Gbps link.
  EXPECT_LT(res.goodput.gbps_f(), 30.0);
  EXPECT_GT(res.goodput.gbps_f(), 10.0);
  EXPECT_GT(res.sender_cpu_utilisation, 0.9);
}

TEST(BulkTransfer, SweepPolicyReducesThroughput) {
  BulkTransferOptions base;
  base.conn.cca = "bbr";
  base.sender_cpu = {Duration::nanos(1800), Duration::nanos(80), 0.0015};
  base.warmup = Duration::millis(15);
  base.measure = Duration::millis(25);
  const BulkTransferResult plain = run_bulk_transfer(base);

  core::SweepSizePolicy::Config sweep_cfg;
  sweep_cfg.alpha = 100;
  core::SweepSizePolicy sweep(sweep_cfg);
  BulkTransferOptions obf = base;
  obf.conn.policy = &sweep;
  const BulkTransferResult reduced = run_bulk_transfer(obf);

  EXPECT_LT(reduced.goodput.gbps_f(), plain.goodput.gbps_f() * 0.7);
  EXPECT_GT(reduced.goodput.gbps_f(), 10.0);  // the paper's ">= 19.7 Gb/s" claim
}

}  // namespace
}  // namespace stob::workload
