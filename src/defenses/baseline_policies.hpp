// Streaming ports of the paper's §3 emulation primitives onto the
// defenses::Policy interface. These are the migration gate of the policy
// refactor: SplitDefense / DelayDefense / CombinedDefense now run on these
// state machines, and tests/test_policy_parity.cpp pins their output
// byte-identical to the original trace transforms (same Rng draw order,
// same pre-normalize emission order).
#pragma once

#include "defenses/policy.hpp"
#include "defenses/trace_defense.hpp"

namespace stob::defenses {

/// Packet splitting as a per-packet decision: an in-scope packet larger
/// than the threshold leaves as two halves, the second after the first
/// half's serialisation time at the configured link rate.
class SplitStreamPolicy final : public Policy {
 public:
  explicit SplitStreamPolicy(SplitDefense::Config cfg = {}) : cfg_(cfg) {}

  std::string name() const override { return "split"; }
  void begin(Rng& rng) override;
  void on_packet(const PacketEvent& ev, std::vector<PacketOut>& out) override;

 private:
  SplitDefense::Config cfg_;
};

/// Packet delaying as a per-packet decision: each in-scope inter-arrival
/// gap is inflated by U(lo, hi); the accumulated shift rides on every later
/// packet. Draws from the job Rng in event order — the legacy draw order.
class DelayStreamPolicy final : public Policy {
 public:
  explicit DelayStreamPolicy(DelayDefense::Config cfg = {}) : cfg_(cfg) {}

  std::string name() const override { return "delay"; }
  void begin(Rng& rng) override;
  void on_packet(const PacketEvent& ev, std::vector<PacketOut>& out) override;

 private:
  DelayDefense::Config cfg_;
  Rng* rng_ = nullptr;
  double shift_ = 0.0;
  double prev_original_ = 0.0;
  bool first_ = true;
};

}  // namespace stob::defenses
