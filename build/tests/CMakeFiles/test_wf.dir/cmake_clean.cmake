file(REMOVE_RECURSE
  "CMakeFiles/test_wf.dir/test_wf.cpp.o"
  "CMakeFiles/test_wf.dir/test_wf.cpp.o.d"
  "test_wf"
  "test_wf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
