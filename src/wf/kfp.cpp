#include "wf/kfp.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "util/stats.hpp"

namespace stob::wf {

void KFingerprint::fit(const Dataset& train) {
  fit(kfp_features(train), train.labels());
}

void KFingerprint::fit(const std::vector<std::vector<double>>& rows,
                       const std::vector<int>& labels) {
  if (rows.size() != labels.size() || rows.empty()) {
    throw std::invalid_argument("KFingerprint::fit: rows/labels mismatch or empty");
  }
  num_classes_ = *std::max_element(labels.begin(), labels.end()) + 1;
  TrainView view{rows, labels, num_classes_};
  forest_ = RandomForest(cfg_.forest);
  forest_.fit(view);
  train_leaves_.clear();
  train_labels_.clear();
  if (cfg_.use_knn) {
    train_leaves_.reserve(rows.size());
    for (const auto& r : rows) train_leaves_.push_back(forest_.leaf_vector(r));
    train_labels_ = labels;
  }
}

int KFingerprint::predict(const Trace& trace) const { return predict(kfp_features(trace)); }

int KFingerprint::predict(std::span<const double> features) const {
  if (!forest_.trained()) throw std::logic_error("KFingerprint::predict before fit");
  return cfg_.use_knn ? knn_predict(features) : forest_.predict(features);
}

int KFingerprint::knn_predict(std::span<const double> features) const {
  const std::vector<std::uint32_t> q = forest_.leaf_vector(features);
  // Hamming similarity: count of trees agreeing on the leaf.
  std::vector<std::pair<int, int>> scored;  // (matches, label)
  scored.reserve(train_leaves_.size());
  for (std::size_t i = 0; i < train_leaves_.size(); ++i) {
    int matches = 0;
    const auto& t = train_leaves_[i];
    for (std::size_t j = 0; j < q.size(); ++j) matches += (t[j] == q[j]);
    scored.emplace_back(matches, train_labels_[i]);
  }
  const std::size_t k = std::min(cfg_.k_neighbors, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + static_cast<std::ptrdiff_t>(k),
                    scored.end(), [](const auto& a, const auto& b) { return a.first > b.first; });
  std::map<int, int> votes;
  for (std::size_t i = 0; i < k; ++i) votes[scored[i].second] += 1;
  return std::max_element(votes.begin(), votes.end(), [](const auto& a, const auto& b) {
           return a.second < b.second;
         })->first;
}

// --------------------------------------------------------- ConfusionMatrix

double ConfusionMatrix::accuracy() const {
  std::uint64_t correct = 0, total = 0;
  for (std::size_t t = 0; t < classes_; ++t) {
    for (std::size_t p = 0; p < classes_; ++p) {
      const std::uint64_t c = counts_[t * classes_ + p];
      total += c;
      if (t == p) correct += c;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(total);
}

void ConfusionMatrix::merge(const ConfusionMatrix& other) {
  if (other.classes_ != classes_) throw std::invalid_argument("confusion: shape mismatch");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
}

// ----------------------------------------------------------- cross_validate

EvalResult cross_validate(const Dataset& data, const KFingerprint::Config& cfg,
                          std::size_t folds, std::uint64_t seed) {
  return cross_validate(kfp_features(data), data.labels(), cfg, folds, seed);
}

EvalResult cross_validate(const std::vector<std::vector<double>>& rows,
                          const std::vector<int>& labels, const KFingerprint::Config& cfg,
                          std::size_t folds, std::uint64_t seed) {
  if (rows.size() != labels.size() || rows.empty()) {
    throw std::invalid_argument("cross_validate: rows/labels mismatch or empty");
  }
  if (folds < 2) throw std::invalid_argument("cross_validate: need >= 2 folds");
  const int num_classes = *std::max_element(labels.begin(), labels.end()) + 1;

  // Stratified fold assignment: shuffle within each class, deal round-robin.
  std::vector<std::size_t> fold_of(rows.size());
  Rng rng(seed);
  for (int cls = 0; cls < num_classes; ++cls) {
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (labels[i] == cls) idx.push_back(i);
    }
    std::shuffle(idx.begin(), idx.end(), rng);
    for (std::size_t j = 0; j < idx.size(); ++j) fold_of[idx[j]] = j % folds;
  }

  EvalResult result;
  result.confusion = ConfusionMatrix(static_cast<std::size_t>(num_classes));
  for (std::size_t f = 0; f < folds; ++f) {
    std::vector<std::vector<double>> train_rows;
    std::vector<int> train_labels;
    std::vector<std::size_t> test_idx;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (fold_of[i] == f) {
        test_idx.push_back(i);
      } else {
        train_rows.push_back(rows[i]);
        train_labels.push_back(labels[i]);
      }
    }
    if (test_idx.empty() || train_rows.empty()) continue;

    KFingerprint::Config fold_cfg = cfg;
    fold_cfg.forest.seed = seed ^ (0x9E3779B97F4A7C15ull * (f + 1));
    KFingerprint clf(fold_cfg);
    clf.fit(train_rows, train_labels);

    ConfusionMatrix cm(static_cast<std::size_t>(num_classes));
    for (std::size_t i : test_idx) cm.add(labels[i], clf.predict(rows[i]));
    result.fold_accuracies.push_back(cm.accuracy());
    result.confusion.merge(cm);
  }
  result.mean_accuracy = stats::mean(result.fold_accuracies);
  result.std_accuracy = stats::stddev(result.fold_accuracies);
  return result;
}

}  // namespace stob::wf
