#include "workload/website.hpp"

#include <algorithm>
#include <cmath>

namespace stob::workload {

std::int64_t PagePlan::total_response_bytes() const {
  std::int64_t total = html_bytes;
  for (std::int64_t b : object_bytes) total += b;
  return total;
}

PagePlan sample_page(const SiteProfile& p, Rng& rng) {
  PagePlan plan;
  plan.parallel_connections = p.parallel_connections;
  plan.html_bytes = std::max<std::int64_t>(
      2000, static_cast<std::int64_t>(rng.lognormal(p.html_mu, p.html_sigma)));
  plan.html_request_bytes =
      std::max<std::int64_t>(200, static_cast<std::int64_t>(rng.normal(p.request_bytes_mean, 60)));
  plan.html_think = Duration::seconds_f(rng.exponential(1000.0 / std::max(p.think_ms_mean, 0.1)));
  plan.tls_response_bytes = std::max<std::int64_t>(
      1500, static_cast<std::int64_t>(rng.normal(p.tls_response_mean, p.tls_response_sigma)));

  const auto count = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::llround(rng.lognormal(
             std::log(p.objects_mean), p.objects_sigma))));
  for (std::int64_t i = 0; i < count; ++i) {
    std::int64_t size;
    if (rng.chance(p.large_object_prob)) {
      size = static_cast<std::int64_t>(rng.lognormal(p.large_object_mu, 0.4));
    } else {
      size = static_cast<std::int64_t>(rng.lognormal(p.object_mu, p.object_sigma));
    }
    plan.object_bytes.push_back(std::clamp<std::int64_t>(size, 400, 8'000'000));
    plan.request_bytes.push_back(std::max<std::int64_t>(
        150, static_cast<std::int64_t>(rng.normal(p.request_bytes_mean, 60))));
    plan.think_times.push_back(
        Duration::seconds_f(rng.exponential(1000.0 / std::max(p.think_ms_mean, 0.1))));
  }
  return plan;
}

const std::vector<SiteProfile>& nine_sites() {
  // Parameters are hand-tuned to give each site a distinct signature in the
  // dimensions WF exploits (volume, object count, burstiness, RTT) while
  // staying within realistic web-page statistics.
  static const std::vector<SiteProfile> sites = [] {
    std::vector<SiteProfile> v;

    SiteProfile bing;
    bing.name = "bing.com";
    bing.html_mu = std::log(90'000.0);
    bing.objects_mean = 22;
    bing.object_mu = std::log(18'000.0);
    bing.object_sigma = 0.8;
    bing.large_object_prob = 0.10;  // hero image of the day
    bing.large_object_mu = std::log(400'000.0);
    bing.parallel_connections = 4;
    bing.think_ms_mean = 6;
    bing.base_one_way_delay = Duration::millis(8);
    bing.tls_response_mean = 4400;
    bing.request_bytes_mean = 580;
    bing.server_initial_cwnd = 24;
    v.push_back(bing);

    SiteProfile github;
    github.name = "github.com";
    github.html_mu = std::log(160'000.0);
    github.objects_mean = 32;
    github.object_mu = std::log(9'000.0);
    github.object_sigma = 1.0;
    github.large_object_prob = 0.06;  // big JS chunks
    github.large_object_mu = std::log(250'000.0);
    github.parallel_connections = 6;
    github.think_ms_mean = 12;
    github.base_one_way_delay = Duration::millis(14);
    github.tls_response_mean = 3800;
    github.request_bytes_mean = 640;
    github.server_initial_cwnd = 10;
    v.push_back(github);

    SiteProfile instagram;
    instagram.name = "instagram.com";
    instagram.html_mu = std::log(55'000.0);
    instagram.objects_mean = 58;
    instagram.object_mu = std::log(35'000.0);  // image thumbnails
    instagram.object_sigma = 0.7;
    instagram.large_object_prob = 0.12;
    instagram.large_object_mu = std::log(600'000.0);
    instagram.parallel_connections = 6;
    instagram.think_ms_mean = 9;
    instagram.base_one_way_delay = Duration::millis(11);
    instagram.tls_response_mean = 4900;
    instagram.request_bytes_mean = 710;
    instagram.server_initial_cwnd = 32;
    v.push_back(instagram);

    SiteProfile netflix;
    netflix.name = "netflix.com";
    netflix.html_mu = std::log(220'000.0);
    netflix.objects_mean = 14;
    netflix.object_mu = std::log(90'000.0);  // few, very large JS bundles
    netflix.object_sigma = 1.1;
    netflix.large_object_prob = 0.18;
    netflix.large_object_mu = std::log(1'200'000.0);
    netflix.parallel_connections = 3;
    netflix.think_ms_mean = 5;
    netflix.base_one_way_delay = Duration::millis(7);
    netflix.tls_response_mean = 5600;
    netflix.request_bytes_mean = 560;
    netflix.server_initial_cwnd = 32;
    v.push_back(netflix);

    SiteProfile office;
    office.name = "office.com";
    office.html_mu = std::log(120'000.0);
    office.objects_mean = 40;
    office.object_mu = std::log(14'000.0);
    office.object_sigma = 0.9;
    office.large_object_prob = 0.05;
    office.large_object_mu = std::log(300'000.0);
    office.parallel_connections = 5;
    office.think_ms_mean = 16;
    office.base_one_way_delay = Duration::millis(18);
    office.tls_response_mean = 5200;
    office.request_bytes_mean = 690;
    office.server_initial_cwnd = 10;
    v.push_back(office);

    SiteProfile spotify;
    spotify.name = "spotify.com";
    spotify.html_mu = std::log(75'000.0);
    spotify.objects_mean = 26;
    spotify.object_mu = std::log(26'000.0);
    spotify.object_sigma = 0.85;
    spotify.large_object_prob = 0.09;
    spotify.large_object_mu = std::log(500'000.0);
    spotify.parallel_connections = 4;
    spotify.think_ms_mean = 10;
    spotify.base_one_way_delay = Duration::millis(12);
    spotify.tls_response_mean = 4700;
    spotify.request_bytes_mean = 620;
    spotify.server_initial_cwnd = 16;
    v.push_back(spotify);

    SiteProfile whatsapp;
    whatsapp.name = "whatsapp.net";
    whatsapp.html_mu = std::log(35'000.0);
    whatsapp.objects_mean = 8;  // lean landing page
    whatsapp.object_mu = std::log(12'000.0);
    whatsapp.object_sigma = 0.8;
    whatsapp.large_object_prob = 0.04;
    whatsapp.large_object_mu = std::log(200'000.0);
    whatsapp.parallel_connections = 2;
    whatsapp.think_ms_mean = 7;
    whatsapp.base_one_way_delay = Duration::millis(9);
    whatsapp.tls_response_mean = 3500;
    whatsapp.request_bytes_mean = 420;
    whatsapp.server_initial_cwnd = 10;
    v.push_back(whatsapp);

    SiteProfile wikipedia;
    wikipedia.name = "wikipedia.org";
    wikipedia.html_mu = std::log(70'000.0);  // text-heavy HTML
    wikipedia.objects_mean = 12;
    wikipedia.object_mu = std::log(6'000.0);  // small icons/CSS
    wikipedia.object_sigma = 0.9;
    wikipedia.large_object_prob = 0.03;
    wikipedia.large_object_mu = std::log(150'000.0);
    wikipedia.parallel_connections = 2;
    wikipedia.think_ms_mean = 4;  // cached text, fast origin
    wikipedia.base_one_way_delay = Duration::millis(6);
    wikipedia.tls_response_mean = 3200;
    wikipedia.request_bytes_mean = 380;
    wikipedia.server_initial_cwnd = 16;
    v.push_back(wikipedia);

    SiteProfile youtube;
    youtube.name = "youtube.com";
    youtube.html_mu = std::log(480'000.0);  // huge HTML payload
    youtube.objects_mean = 44;
    youtube.object_mu = std::log(30'000.0);
    youtube.object_sigma = 1.0;
    youtube.large_object_prob = 0.14;  // thumbnails + player JS
    youtube.large_object_mu = std::log(900'000.0);
    youtube.parallel_connections = 6;
    youtube.think_ms_mean = 8;
    youtube.base_one_way_delay = Duration::millis(10);
    youtube.tls_response_mean = 4600;
    youtube.request_bytes_mean = 750;
    youtube.server_initial_cwnd = 32;
    v.push_back(youtube);

    return v;
  }();
  return sites;
}

}  // namespace stob::workload
