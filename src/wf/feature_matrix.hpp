// Contiguous row-major feature storage for the WF attack engine.
//
// One allocation for the whole dataset instead of a std::vector per
// sample: rows are cache-line-contiguous, a fold's training subset is a
// single gather, and batch kernels (forest prediction, leaf k-NN) can
// stream it. Rows are handed out as std::span, so classifiers never see
// the storage layout.
//
// Storage is 64-byte over-aligned with a padded row stride (cols rounded
// up to 8 doubles), so every row starts on its own cache line / full AVX2
// vector boundary — a plain std::vector<double> only guarantees 8-byte
// alignment, which silently forces unaligned SIMD loads. Padding lanes are
// always zero, so equality and hashing over raw storage stay deterministic.
// row(r) spans exactly cols() entries; batch kernels that walk raw storage
// use row_stride() as the row-to-row distance.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <span>
#include <vector>

namespace stob::wf {

class FeatureMatrix {
 public:
  /// Row alignment in bytes (one cache line, one full AVX-512 vector).
  static constexpr std::size_t kRowAlign = 64;

  FeatureMatrix() = default;
  /// rows x cols matrix, zero-filled.
  FeatureMatrix(std::size_t rows, std::size_t cols);

  FeatureMatrix(const FeatureMatrix& other);
  FeatureMatrix& operator=(const FeatureMatrix& other);
  FeatureMatrix(FeatureMatrix&&) noexcept = default;
  FeatureMatrix& operator=(FeatureMatrix&&) noexcept = default;

  /// Copy a ragged row-of-vectors dataset into contiguous storage. All rows
  /// must have the same width.
  static FeatureMatrix from_rows(const std::vector<std::vector<double>>& rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  /// Doubles between consecutive row starts (cols rounded up to 8).
  std::size_t row_stride() const { return stride_; }
  bool empty() const { return rows_ == 0; }

  std::span<const double> row(std::size_t r) const {
    return {data_.get() + r * stride_, cols_};
  }
  std::span<double> row(std::size_t r) { return {data_.get() + r * stride_, cols_}; }
  double at(std::size_t r, std::size_t c) const { return data_[r * stride_ + c]; }
  double& at(std::size_t r, std::size_t c) { return data_[r * stride_ + c]; }
  /// Start of row 0; rows are row_stride() doubles apart (NOT cols()).
  const double* data() const { return data_.get(); }

  /// Set the width of an empty matrix (before the first append_row).
  void set_cols(std::size_t cols);

  /// Append one row (must match cols(); sets cols() on a fresh matrix).
  void append_row(std::span<const double> values);

  /// New matrix holding rows `indices`, in order (fold/train-set gather).
  FeatureMatrix gathered(std::span<const std::size_t> indices) const;

  /// Value equality over shape and row contents (padding excluded, though
  /// it is zero on both sides by construction).
  friend bool operator==(const FeatureMatrix& a, const FeatureMatrix& b);

 private:
  struct AlignedDelete {
    void operator()(double* p) const {
      ::operator delete[](p, std::align_val_t(kRowAlign));
    }
  };

  /// Zero-filled 64-byte-aligned buffer of n doubles.
  static std::unique_ptr<double[], AlignedDelete> allocate(std::size_t n);
  /// Reallocate to `cap_rows` capacity, preserving contents.
  void reserve_rows(std::size_t cap_rows);

  std::size_t cols_ = 0;
  std::size_t stride_ = 0;
  std::size_t rows_ = 0;
  std::size_t cap_rows_ = 0;
  std::unique_ptr<double[], AlignedDelete> data_;
};

}  // namespace stob::wf
