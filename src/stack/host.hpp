// A simulated end host: NIC + qdisc egress, CPU cost model, and ingress
// demultiplexing to transport connections and listeners.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>

#include "net/packet.hpp"
#include "net/pipe.hpp"
#include "sim/simulator.hpp"
#include "stack/nic.hpp"
#include "stack/qdisc.hpp"

namespace stob::stack {

class Host {
 public:
  using PacketHandler = std::function<void(net::Packet)>;

  struct Config {
    Nic::Config nic;
    CpuModel::Costs cpu;
    /// Factory for the egress qdisc; defaults to fq (pacing-capable).
    std::function<std::unique_ptr<Qdisc>()> make_qdisc;
  };

  Host(sim::Simulator& sim, net::HostId id);  // default Config
  Host(sim::Simulator& sim, net::HostId id, Config cfg);

  net::HostId id() const { return id_; }
  sim::Simulator& simulator() { return sim_; }
  Nic& nic() { return nic_; }
  CpuModel& cpu() { return cpu_; }

  /// Wire this host's NIC into an egress pipe.
  void attach_egress(net::Pipe& pipe) { nic_.attach_egress(pipe); }

  /// Ingress entry point; typically installed as the sink of the peer pipe.
  void receive(net::Packet p);

  /// Register a handler for packets whose FlowKey equals `incoming` exactly
  /// (i.e. the connection's own key reversed). Returns false if taken.
  bool register_flow(const net::FlowKey& incoming, PacketHandler handler);
  void unregister_flow(const net::FlowKey& incoming);

  /// Register a fallback handler for packets addressed to `port` with no
  /// exact flow match (a listening server socket).
  bool bind_listener(net::Port port, net::Proto proto, PacketHandler handler);
  void unbind_listener(net::Port port, net::Proto proto);

  /// Allocate an ephemeral local port.
  net::Port allocate_port() { return next_port_++; }

  std::uint64_t unmatched_packets() const { return unmatched_; }
  /// Packets dropped at ingress checksum validation (Packet::corrupted).
  std::uint64_t checksum_drops() const { return checksum_drops_; }

 private:
  struct ListenerKey {
    net::Port port;
    net::Proto proto;
    friend bool operator==(const ListenerKey&, const ListenerKey&) = default;
  };
  struct ListenerKeyHash {
    std::size_t operator()(const ListenerKey& k) const {
      return std::hash<std::uint32_t>{}(static_cast<std::uint32_t>(k.port) << 2 |
                                        static_cast<std::uint32_t>(k.proto));
    }
  };

  sim::Simulator& sim_;
  net::HostId id_;
  CpuModel cpu_;
  Nic nic_;
  net::Port next_port_ = 40000;
  std::uint64_t unmatched_ = 0;
  std::uint64_t checksum_drops_ = 0;
  std::unordered_map<net::FlowKey, PacketHandler, net::FlowKeyHash> flows_;
  std::unordered_map<ListenerKey, PacketHandler, ListenerKeyHash> listeners_;
};

}  // namespace stob::stack
