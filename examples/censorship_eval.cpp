// Censorship evaluation walk-through (a small-scale §3 of the paper).
//
// Collects page-load traces for three simulated websites, trains the k-FP
// attack, and shows how a censor's classification confidence grows with the
// number of observed packets — and how in-trace countermeasures slow that
// growth. This is the same pipeline bench/table2_kfp runs at full scale.
//
// Build & run:   ./build/examples/censorship_eval
#include <cstdio>
#include <vector>

#include "defenses/trace_defense.hpp"
#include "wf/kfp.hpp"
#include "workload/page_load.hpp"

using namespace stob;

int main() {
  // A small closed world: three sites, 20 visits each.
  std::vector<workload::SiteProfile> sites(workload::nine_sites().begin(),
                                           workload::nine_sites().begin() + 3);
  workload::PageLoadOptions options;
  std::printf("collecting %zu sites x 20 page loads through the simulated stack...\n",
              sites.size());
  const wf::Dataset data = workload::collect_dataset(sites, 20, /*seed=*/7, options);
  std::printf("collected %zu traces (avg %.0f packets each)\n\n", data.size(), [&] {
    double acc = 0;
    for (std::size_t i = 0; i < data.size(); ++i) acc += static_cast<double>(data.trace(i).size());
    return acc / static_cast<double>(data.size());
  }());

  wf::KFingerprint::Config attack;
  attack.forest.num_trees = 60;

  defenses::CombinedDefense defense;  // split + delay, server-side

  std::printf("%-10s %-14s %-14s\n", "prefix N", "undefended", "defended");
  for (std::size_t n : {10, 20, 40, 80, 0}) {
    const wf::Dataset plain =
        data.transformed([&](const wf::Trace& t) { return n ? t.truncated(n) : t; });
    Rng rng(99);
    const wf::Dataset defended = data.transformed([&](const wf::Trace& t) {
      wf::Trace d = defenses::apply_to_prefix(defense, t, n, rng);
      return n ? d.truncated(n) : d;
    });
    const double acc_plain = wf::cross_validate(plain, attack, 4).mean_accuracy;
    const double acc_def = wf::cross_validate(defended, attack, 4).mean_accuracy;
    std::printf("%-10s %-14.3f %-14.3f\n", n == 0 ? "All" : std::to_string(n).c_str(),
                acc_plain, acc_def);
  }

  std::printf("\nA censor must block *early*; pushing the knee of this curve to the\n");
  std::printf("right is the protection stack-level countermeasures buy (paper, §3).\n");
  return 0;
}
