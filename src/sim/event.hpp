// Small-buffer-optimised event callback.
//
// `sim::Event` replaces `std::function<void()>` in the simulator hot path.
// std::function's inline buffer on mainstream ABIs is 16 bytes; nearly every
// capture in this codebase is bigger (a TCP timer captures this + a weak_ptr
// + sequence state), so the old core paid one *global* heap allocation per
// scheduled event. Event keeps 64 bytes inline — covering the timer-sized
// captures that dominate event counts while keeping the scheduler's node
// pool small enough to stay cache-resident — and spills bigger captures
// (e.g. a pipe delivery moving a whole ~288-byte net::Packet) to the
// thread-local buffer pool, never the global allocator. Spilled callables
// also move by pointer steal, so oversized captures are cheap to schedule
// too.
//
// Move-only, like the heap slots that own it. Invoking an empty Event is
// undefined; the simulator asserts non-empty at schedule time.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "util/buffer_pool.hpp"

namespace stob::sim {

class Event {
 public:
  /// Covers the transport-timer captures that dominate event counts; larger
  /// captures go to the thread-local pool. Chosen small so the scheduler's
  /// callback pool (one Event per in-flight event) stays cache-resident —
  /// raising this to fit the pipe's packet capture measures *slower* on the
  /// end-to-end benchmarks than spilling it.
  static constexpr std::size_t kInlineCapacity = 64;

  Event() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, Event> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  Event(F&& f) {  // NOLINT(google-explicit-constructor) — drop-in for std::function
    emplace(std::forward<F>(f));
  }

  /// Construct the callable directly in this Event's storage, replacing any
  /// previous one. The simulator schedules through this so a capture is
  /// moved exactly once — from the call site into its pool node — instead
  /// of relocating through Event temporaries.
  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, Event> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  void emplace(F&& f) {
    reset();
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      void* mem = mem::pool_alloc(sizeof(Fn));
      ::new (mem) Fn(std::forward<F>(f));
      std::memcpy(storage_, &mem, sizeof(void*));
      ops_ = &heap_ops<Fn>;
    }
  }

  Event(Event&& other) noexcept { move_from(other); }

  Event& operator=(Event&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  ~Event() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() {
    assert(ops_ != nullptr);
    ops_->invoke(target());
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-construct into dst and destroy src. Null ⇒ trivially copyable:
    /// the whole inline buffer is memcpy'd instead (no indirect call).
    void (*relocate)(void* dst, void* src) noexcept;
    /// Null ⇒ trivially destructible: nothing to do on reset.
    void (*destroy)(void*) noexcept;
    std::size_t heap_size;  // 0 ⇒ callable lives inline
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineCapacity && alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static void invoke_impl(void* p) {
    (*static_cast<Fn*>(p))();
  }
  template <typename Fn>
  static void relocate_impl(void* dst, void* src) noexcept {
    ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
    static_cast<Fn*>(src)->~Fn();
  }
  template <typename Fn>
  static void destroy_impl(void* p) noexcept {
    static_cast<Fn*>(p)->~Fn();
  }

  template <typename Fn>
  static constexpr Ops inline_ops = {
      &invoke_impl<Fn>,
      std::is_trivially_copyable_v<Fn> ? nullptr : &relocate_impl<Fn>,
      std::is_trivially_destructible_v<Fn> ? nullptr : &destroy_impl<Fn>, 0};
  template <typename Fn>
  static constexpr Ops heap_ops = {
      &invoke_impl<Fn>, nullptr,
      std::is_trivially_destructible_v<Fn> ? nullptr : &destroy_impl<Fn>, sizeof(Fn)};

  void* target() noexcept {
    if (ops_->heap_size != 0) {
      void* p;
      std::memcpy(&p, storage_, sizeof(void*));
      return p;
    }
    return storage_;
  }

  void move_from(Event& other) noexcept {
    ops_ = other.ops_;
    if (ops_ == nullptr) return;
    if (ops_->heap_size != 0) {
      std::memcpy(storage_, other.storage_, sizeof(void*));  // steal the pointer
    } else if (ops_->relocate != nullptr) {
      ops_->relocate(storage_, other.storage_);
    } else {
      std::memcpy(storage_, other.storage_, kInlineCapacity);
    }
    other.ops_ = nullptr;
  }

  void reset() noexcept {
    if (ops_ == nullptr) return;
    if (ops_->heap_size != 0) {
      void* p = target();
      if (ops_->destroy != nullptr) ops_->destroy(p);
      mem::pool_free(p, ops_->heap_size);
    } else if (ops_->destroy != nullptr) {
      ops_->destroy(storage_);
    }
    ops_ = nullptr;
  }

  alignas(std::max_align_t) std::byte storage_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

}  // namespace stob::sim
