#include "tcp/bbr.hpp"

#include <algorithm>

namespace stob::tcp {

namespace {
constexpr double kStartupGain = 2.885;  // 2/ln(2)
constexpr double kDrainGain = 1.0 / kStartupGain;
constexpr double kCwndGain = 2.0;
constexpr double kProbeGains[] = {1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
constexpr Duration kBwWindow = Duration::seconds(10);       // max-filter horizon
constexpr Duration kMinRttWindow = Duration::seconds(10);   // min-filter horizon
constexpr Duration kProbeRttDuration = Duration::millis(200);
}  // namespace

BbrCc::BbrCc(Bytes mss, Bytes initial_window)
    : mss_(mss.count()),
      initial_cwnd_(initial_window.count() > 0 ? initial_window.count() : 10 * mss_) {}

DataRate BbrCc::btlbw() const {
  std::int64_t best = 0;
  for (const auto& [t, bps] : bw_samples_) best = std::max(best, bps);
  return DataRate(best);
}

Bytes BbrCc::bdp(double gain) const {
  const DataRate bw = btlbw();
  if (bw.is_zero() || min_rtt_ >= Duration::seconds(10)) {
    return Bytes(initial_cwnd_);
  }
  const double bytes = bw.gbps_f() * 1e9 / 8.0 * min_rtt_.sec() * gain;
  return Bytes(std::max<std::int64_t>(static_cast<std::int64_t>(bytes), 4 * mss_));
}

void BbrCc::update_btlbw(const AckEvent& ev) {
  // App-limited samples can only underestimate; the max filter makes them
  // safe to include, and dropping them entirely would starve the model on
  // request/response workloads.
  if (!ev.delivery_rate.is_zero()) {
    bw_samples_.emplace_back(ev.now, ev.delivery_rate.bits_per_sec());
  }
  while (!bw_samples_.empty() && ev.now - bw_samples_.front().first > kBwWindow) {
    bw_samples_.pop_front();
  }
}

void BbrCc::update_min_rtt(const AckEvent& ev) {
  if (ev.rtt_sample.ns() > 0 &&
      (ev.rtt_sample < min_rtt_ || ev.now - min_rtt_stamp_ > kMinRttWindow)) {
    min_rtt_ = ev.rtt_sample;
    min_rtt_stamp_ = ev.now;
  }
}

void BbrCc::advance_mode(const AckEvent& ev) {
  switch (mode_) {
    case Mode::Startup: {
      // Full pipe: bandwidth grew <25% across three consecutive rounds.
      if (ev.now - round_start_ >= std::max(srtt_, Duration::millis(1))) {
        round_start_ = ev.now;
        const std::int64_t bw = btlbw().bits_per_sec();
        if (bw > full_bw_ + full_bw_ / 4) {
          full_bw_ = bw;
          full_bw_count_ = 0;
        } else if (full_bw_ > 0 && ++full_bw_count_ >= 3) {
          mode_ = Mode::Drain;
        }
      }
      break;
    }
    case Mode::Drain:
      if (ev.inflight <= bdp(1.0)) {
        mode_ = Mode::ProbeBw;
        cycle_index_ = 0;
        cycle_stamp_ = ev.now;
      }
      break;
    case Mode::ProbeBw: {
      if (ev.now - cycle_stamp_ >= std::max(min_rtt_, Duration::millis(1))) {
        cycle_index_ = (cycle_index_ + 1) % 8;
        cycle_stamp_ = ev.now;
      }
      // Periodic ProbeRTT when the min-RTT estimate goes stale.
      if (ev.now - min_rtt_stamp_ > kMinRttWindow) {
        mode_ = Mode::ProbeRtt;
        probe_rtt_done_ = ev.now + kProbeRttDuration;
      }
      break;
    }
    case Mode::ProbeRtt:
      if (ev.now >= probe_rtt_done_) {
        min_rtt_stamp_ = ev.now;  // samples taken during the floor refresh it
        mode_ = Mode::ProbeBw;
        cycle_index_ = 0;
        cycle_stamp_ = ev.now;
      }
      break;
  }
}

void BbrCc::on_ack(const AckEvent& ev) {
  srtt_ = ev.srtt;
  last_inflight_ = ev.inflight;
  update_btlbw(ev);
  update_min_rtt(ev);
  advance_mode(ev);
}

void BbrCc::on_loss(TimePoint /*now*/) {
  // BBRv1 does not react to individual losses; inflight is already capped
  // by cwnd = gain * BDP.
}

void BbrCc::on_rto(TimePoint /*now*/) {
  // Conservative restart that KEEPS the bandwidth model: re-probing from a
  // 10-segment window while thousands of lost segments block RTT/rate
  // samples would freeze recovery. Instead drop to steady ProbeBW at unit
  // gain — pace at the believed bottleneck rate, no extra probing — and
  // let normal sampling correct the model. (With no model yet, fall back
  // to Startup.)
  if (btlbw().is_zero()) {
    full_bw_ = 0;
    full_bw_count_ = 0;
    mode_ = Mode::Startup;
    return;
  }
  mode_ = Mode::ProbeBw;
  cycle_index_ = 2;  // unit gain phase
}

Bytes BbrCc::cwnd() const {
  switch (mode_) {
    case Mode::Startup:
      return bdp(kStartupGain) < Bytes(initial_cwnd_) ? Bytes(initial_cwnd_)
                                                      : bdp(kStartupGain);
    case Mode::Drain:
      return bdp(kCwndGain);
    case Mode::ProbeBw:
      return bdp(kCwndGain);
    case Mode::ProbeRtt:
      return Bytes(4 * mss_);
  }
  return Bytes(initial_cwnd_);
}

DataRate BbrCc::pacing_rate() const {
  const DataRate bw = btlbw();
  if (bw.is_zero()) {
    // No model yet: pace at initial cwnd per srtt, if known.
    if (srtt_.ns() <= 0) return DataRate(0);
    return DataRate::from(Bytes(initial_cwnd_), srtt_) * kStartupGain;
  }
  double gain = 1.0;
  switch (mode_) {
    case Mode::Startup: gain = kStartupGain; break;
    case Mode::Drain: gain = kDrainGain; break;
    case Mode::ProbeBw: gain = kProbeGains[cycle_index_]; break;
    case Mode::ProbeRtt: gain = 1.0; break;
  }
  return bw * gain;
}

}  // namespace stob::tcp
