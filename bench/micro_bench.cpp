// Micro-benchmarks (google-benchmark) for the performance-critical pieces:
// event queue operations, qdisc enqueue/dequeue, TSO splitting through the
// NIC, Stob policy hooks, k-FP feature extraction, and random-forest
// training/prediction. These bound the simulator's throughput and the
// attack pipeline's cost.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/cca_guard.hpp"
#include "core/histogram.hpp"
#include "core/policies.hpp"
#include "net/pipe.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "obs/trace_recorder.hpp"
#include "sim/simulator.hpp"
#include "stack/nic.hpp"
#include "stack/qdisc.hpp"
#include "wf/features.hpp"
#include "wf/kfp.hpp"
#include "wf/random_forest.hpp"

namespace {

using namespace stob;

void BM_SimulatorScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    for (std::size_t i = 0; i < n; ++i) {
      sim.schedule_at(TimePoint(static_cast<std::int64_t>(i * 7919 % 100000)), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.executed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SimulatorScheduleRun)->Arg(1000)->Arg(10000);

net::Packet micro_packet(std::int64_t payload, net::Port src_port = 1000) {
  net::Packet p;
  p.id = net::next_packet_id();
  p.flow = {1, 2, src_port, 443, net::Proto::Tcp};
  p.header = Bytes(net::kEthIpTcpHeader);
  p.payload = Bytes(payload);
  return p;
}

void BM_FqQdiscEnqueueDequeue(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  stack::FqQdisc q;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      q.enqueue(micro_packet(1448, static_cast<net::Port>(1000 + i % flows)));
    }
    while (auto p = q.dequeue(TimePoint::zero())) benchmark::DoNotOptimize(p->id);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_FqQdiscEnqueueDequeue)->Arg(1)->Arg(16);

void BM_NicTsoSplit(benchmark::State& state) {
  sim::Simulator sim;
  net::Pipe pipe(sim, {DataRate::gbps(400), Duration::micros(1), Bytes(0), 0.0});
  stack::Nic nic(sim, std::make_unique<stack::FifoQdisc>());
  nic.attach_egress(pipe);
  pipe.set_sink([](net::Packet) {});
  for (auto _ : state) {
    auto p = micro_packet(65160);
    p.tso_mss = 1448;
    nic.transmit(std::move(p));
    sim.run();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 65160);
}
BENCHMARK(BM_NicTsoSplit);

// The observability hook with no recorder installed: must be a pointer load
// and branch, nothing else (this is the "tracing disabled" tax every packet
// pays at every layer).
void BM_ObsHookDisabled(benchmark::State& state) {
  const net::Packet p = micro_packet(1448);
  for (auto _ : state) {
    obs::record_packet(obs::Layer::Nic, obs::Direction::Tx, obs::EventKind::Send, p,
                       TimePoint(1000));
    obs::count("nic.wire_packets");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ObsHookDisabled);

void BM_TraceRecorderRecord(benchmark::State& state) {
  obs::TraceRecorder rec(1 << 16);
  obs::ScopedRecorder guard(rec);
  const net::Packet p = micro_packet(1448);
  std::int64_t t = 0;
  for (auto _ : state) {
    obs::record_packet(obs::Layer::Nic, obs::Direction::Tx, obs::EventKind::Send, p,
                       TimePoint(t += 1000));
  }
  benchmark::DoNotOptimize(rec.total_recorded());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TraceRecorderRecord);

void BM_MetricsObserve(benchmark::State& state) {
  obs::MetricsRegistry m;
  obs::ScopedMetrics guard(m);
  double v = 0.0;
  for (auto _ : state) {
    obs::count("tcp.segments_sent");
    obs::sample("tcp.cwnd_bytes", v += 1.0);
  }
  benchmark::DoNotOptimize(m.counter("tcp.segments_sent"));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MetricsObserve);

// The span profiler's disabled path: constructing + destroying a ProfSpan
// with no Profiler installed must be one TLS load and a branch at each end,
// same contract as the packet/metrics hooks above (~1-2 ns).
void BM_ProfSpanDisabled(benchmark::State& state) {
  for (auto _ : state) {
    obs::ProfSpan span("bench.disabled");
    benchmark::DoNotOptimize(&span);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ProfSpanDisabled);

// Enabled path: open + close with clock reads and pool-counter snapshots.
void BM_ProfSpanEnabled(benchmark::State& state) {
  obs::Profiler prof;
  obs::ScopedProfiler guard(prof);
  for (auto _ : state) {
    {
      obs::ProfSpan span("bench.enabled");
      benchmark::DoNotOptimize(&span);
    }
    // Span closed: safe to trim the record buffer between iterations.
    if (prof.records().size() > (1u << 20)) {
      state.PauseTiming();
      prof.clear();
      state.ResumeTiming();
    }
  }
  benchmark::DoNotOptimize(prof.records().size());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ProfSpanEnabled);

void BM_PolicyHook(benchmark::State& state) {
  core::SplitPolicy split;
  core::DelayPolicy delay;
  core::CompositePolicy combo({&split, &delay});
  core::CcaGuard guard(combo);
  core::SegmentContext ctx;
  ctx.flow = {1, 2, 1000, 443, net::Proto::Tcp};
  ctx.cca_segment = Bytes(65160);
  ctx.mss = Bytes(1448);
  ctx.cca_pacing_rate = DataRate::gbps(10);
  std::int64_t t = 0;
  for (auto _ : state) {
    ctx.now = TimePoint(t += 1000);
    ctx.cca_departure = ctx.now;
    benchmark::DoNotOptimize(guard.on_segment(ctx));
  }
}
BENCHMARK(BM_PolicyHook);

void BM_HistogramSample(benchmark::State& state) {
  core::Histogram h(0.0, 1.0, 64);
  Rng fill(1);
  for (int i = 0; i < 10000; ++i) h.add(fill.uniform());
  Rng rng(2);
  for (auto _ : state) benchmark::DoNotOptimize(h.sample(rng));
}
BENCHMARK(BM_HistogramSample);

wf::Trace micro_trace(std::size_t packets) {
  Rng rng(3);
  wf::Trace t;
  double time = 0;
  for (std::size_t i = 0; i < packets; ++i) {
    t.add(time, rng.chance(0.3) ? +1 : -1, rng.uniform_int(66, 1514));
    time += rng.uniform(0.0001, 0.01);
  }
  return t;
}

void BM_KfpFeatureExtraction(benchmark::State& state) {
  const wf::Trace t = micro_trace(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(wf::kfp_features(t));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_KfpFeatureExtraction)->Arg(100)->Arg(1000)->Arg(5000);

struct ForestFixture {
  wf::FeatureMatrix x{9 * 60, 120};
  std::vector<int> labels;

  ForestFixture() {
    Rng rng(4);
    std::size_t r = 0;
    for (int c = 0; c < 9; ++c) {
      for (int i = 0; i < 60; ++i, ++r) {
        for (double& v : x.row(r)) v = rng.normal(c, 2.0);
        labels.push_back(c);
      }
    }
  }
};

void BM_RandomForestFit(benchmark::State& state) {
  static const ForestFixture fx;
  wf::RandomForest::Config cfg;
  cfg.num_trees = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    wf::RandomForest forest(cfg);
    forest.fit({&fx.x, fx.labels, 9});
    benchmark::DoNotOptimize(forest.tree_count());
  }
}
BENCHMARK(BM_RandomForestFit)->Arg(10)->Arg(50)->Unit(benchmark::kMillisecond);

void BM_RandomForestPredict(benchmark::State& state) {
  static const ForestFixture fx;
  wf::RandomForest::Config cfg;
  cfg.num_trees = 100;
  wf::RandomForest forest(cfg);
  forest.fit({&fx.x, fx.labels, 9});
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.predict(fx.x.row(i++ % fx.x.rows())));
  }
}
BENCHMARK(BM_RandomForestPredict);

}  // namespace

BENCHMARK_MAIN();
