// Stack-wide flight recorder.
//
// The paper's core claim is that app-layer packet-sequence intent is
// destroyed *between* layers: socket buffering defers writes, the CCA and
// fq qdisc reschedule departures, and TSO splits super-segments into
// line-rate micro-bursts. This module records one PacketEvent at every
// layer boundary a packet crosses (TLS record -> TCP/QUIC segment -> qdisc
// -> NIC/TSO -> wire), so the distortion each layer introduces becomes a
// queryable signal rather than a one-off bench observation.
//
// Recording is opt-in via a thread-local slot: with no recorder installed
// every hook is a single (TLS) pointer load and branch — no allocation, no
// formatting — so Tier-1 bench numbers are unaffected. Each simulator runs
// on one thread, so the slot needs no atomics; making it thread-local (vs
// the former process-global) lets the parallel experiment engine (src/exp/)
// give every worker its own recorder without any hook-site locking. The
// single-threaded fast path is unchanged: one load plus one branch.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/packet.hpp"
#include "util/csv.hpp"
#include "util/units.hpp"

namespace stob::obs {

/// Stack layer a packet event was observed at, in top-to-bottom order.
enum class Layer : std::uint8_t { App, Tls, Tcp, Quic, Qdisc, Nic, Wire };

enum class Direction : std::uint8_t { Tx, Rx };

enum class EventKind : std::uint8_t {
  Send,        ///< unit emitted by the layer (record sealed, segment built, ...)
  Receive,     ///< unit delivered upward by the layer
  Retransmit,  ///< transport re-emission of already-sent bytes
  Enqueue,     ///< accepted into a queue (qdisc)
  Dequeue,     ///< released from a queue (post-pacing)
  Drop,        ///< discarded at a queue limit
};

std::string_view to_string(Layer layer);
std::string_view to_string(Direction dir);
std::string_view to_string(EventKind kind);

/// One observation of a packet (or record/segment) at a layer boundary.
struct PacketEvent {
  TimePoint time;
  net::FlowKey flow;
  Layer layer = Layer::App;
  Direction dir = Direction::Tx;
  EventKind kind = EventKind::Send;
  std::int64_t bytes = 0;       ///< transport payload bytes of the unit
  std::uint64_t seq = 0;        ///< stream offset (TLS/TCP) or packet number (QUIC)
  std::uint64_t packet_id = 0;  ///< net::Packet::id where one exists

  friend bool operator==(const PacketEvent&, const PacketEvent&) = default;
};

/// Bounded ring buffer of PacketEvents. When full, the oldest events are
/// overwritten (flight-recorder semantics): the tail of a run is always
/// retained, and capacity bounds memory for arbitrarily long simulations.
class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity = 1 << 16);

  void record(const PacketEvent& ev);

  std::size_t capacity() const { return buf_.size(); }
  std::size_t size() const;                     ///< events currently held
  std::uint64_t total_recorded() const { return total_; }
  std::uint64_t overwritten() const;            ///< events lost to wraparound
  void clear();

  /// Snapshot of the held events, oldest first.
  std::vector<PacketEvent> events() const;

  // ---- exporters ----
  void write_csv(const std::filesystem::path& path) const;
  void write_jsonl(const std::filesystem::path& path) const;
  /// The JSONL export as one in-memory string (exactly the bytes
  /// write_jsonl would emit). The golden-trace corpus hashes this.
  std::string to_jsonl() const;

  static csv::Row csv_header();
  static csv::Row to_csv_row(const PacketEvent& ev);
  /// Inverse of to_csv_row; nullopt on malformed rows (used by round-trip
  /// tests and offline analysis of exported traces).
  static std::optional<PacketEvent> from_csv_row(const csv::Row& row);
  static std::string to_json(const PacketEvent& ev);

 private:
  std::vector<PacketEvent> buf_;
  std::size_t head_ = 0;     // next write position
  std::uint64_t total_ = 0;  // lifetime record() count
};

// ---------------------------------------------------------------- install

namespace detail {
extern thread_local TraceRecorder* g_recorder;  // nullptr = tracing disabled
}  // namespace detail

/// Recorder installed on the calling thread, or nullptr. The disabled fast
/// path at every hook site is exactly this load plus a branch.
inline TraceRecorder* recorder() noexcept { return detail::g_recorder; }

/// Install (or, with nullptr, remove) the calling thread's recorder.
void install_recorder(TraceRecorder* r) noexcept;

/// RAII installation for a scope (a test, one page load, one experiment job)
/// on the calling thread. Restores the previously installed recorder on
/// destruction. Worker threads in the experiment engine use this to give
/// each job an isolated sink.
class ScopedRecorder {
 public:
  explicit ScopedRecorder(TraceRecorder& r) : prev_(recorder()) { install_recorder(&r); }
  ~ScopedRecorder() { install_recorder(prev_); }
  ScopedRecorder(const ScopedRecorder&) = delete;
  ScopedRecorder& operator=(const ScopedRecorder&) = delete;

 private:
  TraceRecorder* prev_;
};

// ---------------------------------------------------------------- listener
//
// A second, independent tap: where TraceRecorder passively stores events
// for later export, a StackListener reacts to them as they happen. The
// fault layer's StackInvariantChecker (src/fault/invariants.hpp) is the
// canonical implementation: it cross-checks every event against the
// stack's safety invariants while a simulation runs. Same thread-local
// discipline as the recorder slot: no listener installed = one pointer
// load and a branch per hook.

/// Queue whose occupancy is being reported to the listener.
enum class QueueKind : std::uint8_t {
  QdiscBacklog,  ///< qdisc backlog, bytes
  NicRing,       ///< NIC tx ring occupancy, bytes
};

/// Impairment the fault layer applied to a packet (see src/fault/).
enum class FaultKind : std::uint8_t { Loss, Corrupt, Duplicate, Reorder, Jitter, Flap };

/// One transport emission, annotated with what the CCA alone would have
/// allowed. This is the hook the never-more-aggressive invariant checks:
/// a Stob policy may delay or shrink an emission, never advance or grow it.
struct DepartureEvent {
  net::FlowKey flow;
  TimePoint now;
  TimePoint departure;      ///< chosen earliest-departure time (post-policy)
  TimePoint cca_departure;  ///< earliest time the CCA/pacer alone allows
  std::int64_t bytes = 0;          ///< payload bytes emitted
  std::int64_t cca_segment = 0;    ///< segment size before policy shaping
  std::int64_t cwnd = 0;           ///< congestion window at emission, bytes
  std::int64_t inflight = 0;       ///< bytes in flight *before* this emission
  /// Emission may exceed `inflight + bytes <= cwnd` by this many bytes
  /// (e.g. QUIC admits a packet whenever inflight < cwnd).
  std::int64_t cwnd_slack = 0;
  bool window_limited = false;     ///< emission was subject to the cwnd check
  bool is_retransmission = false;
};

/// Observer of stack activity on the current thread. All methods are called
/// synchronously from hook sites; implementations must not re-enter the
/// stack.
class StackListener {
 public:
  virtual ~StackListener() = default;
  virtual void on_packet(const PacketEvent& ev) = 0;
  virtual void on_departure(const DepartureEvent& ev) = 0;
  /// Cumulative ACK advanced: `una` is the new lowest unacked offset
  /// (TCP stream offset semantics).
  virtual void on_ack_advance(const net::FlowKey& flow, std::uint64_t una) = 0;
  virtual void on_queue_depth(QueueKind kind, std::int64_t depth, std::int64_t bound) = 0;
  virtual void on_fault(FaultKind kind, const net::Packet& p, TimePoint now) = 0;
};

namespace detail {
extern thread_local StackListener* g_listener;  // nullptr = no listener
}  // namespace detail

inline StackListener* listener() noexcept { return detail::g_listener; }

/// Install (or, with nullptr, remove) the calling thread's listener.
void install_listener(StackListener* l) noexcept;

/// RAII listener installation, mirroring ScopedRecorder.
class ScopedListener {
 public:
  explicit ScopedListener(StackListener& l) : prev_(listener()) { install_listener(&l); }
  ~ScopedListener() { install_listener(prev_); }
  ScopedListener(const ScopedListener&) = delete;
  ScopedListener& operator=(const ScopedListener&) = delete;

 private:
  StackListener* prev_;
};

inline void note_departure(const DepartureEvent& ev) {
  if (StackListener* l = detail::g_listener) l->on_departure(ev);
}

inline void note_ack_advance(const net::FlowKey& flow, std::uint64_t una) {
  if (StackListener* l = detail::g_listener) l->on_ack_advance(flow, una);
}

inline void note_queue_depth(QueueKind kind, std::int64_t depth, std::int64_t bound) {
  if (StackListener* l = detail::g_listener) l->on_queue_depth(kind, depth, bound);
}

inline void note_fault(FaultKind kind, const net::Packet& p, TimePoint now) {
  if (StackListener* l = detail::g_listener) l->on_fault(kind, p, now);
}

/// Record an observation of `p` if a recorder is installed. seq is taken
/// from the transport header (TCP stream offset / QUIC packet number).
inline void record_packet(Layer layer, Direction dir, EventKind kind, const net::Packet& p,
                          TimePoint now) {
  TraceRecorder* r = detail::g_recorder;
  StackListener* l = detail::g_listener;
  if (r == nullptr && l == nullptr) return;
  PacketEvent ev;
  ev.time = now;
  ev.flow = p.flow;
  ev.layer = layer;
  ev.dir = dir;
  ev.kind = kind;
  ev.bytes = p.payload.count();
  ev.seq = p.is_tcp() ? p.tcp().seq : p.quic().packet_number;
  ev.packet_id = p.id;
  if (r != nullptr) r->record(ev);
  if (l != nullptr) l->on_packet(ev);
}

}  // namespace stob::obs
