// Unidirectional network pipe: a drop-tail queue feeding a serialising link
// with fixed rate and propagation delay, plus an optional i.i.d. loss model.
// Two pipes back-to-back form a DuplexPath (see path.hpp). Pipes carry both
// data and ACK traffic, so TCP's ACK clock emerges naturally.
#pragma once

#include <functional>

#include "net/packet.hpp"
#include "util/ring_deque.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace stob::net {

class Pipe;

/// Hook a fault-injection layer implements to take over a pipe's
/// impairment decisions (loss, reordering, duplication, corruption,
/// jitter...). Invoked once per packet, after serialisation completes and
/// tx_complete has fired; the model either hands copies back through
/// Pipe::deliver() (with any extra delay) or discards via
/// Pipe::count_lost(). While a model is installed it *replaces* the pipe's
/// built-in i.i.d. loss check, so a model composes its own loss policy.
/// The canonical implementation lives in src/fault/fault.hpp.
class FaultModel {
 public:
  virtual ~FaultModel() = default;
  virtual void on_transmitted(Pipe& pipe, Packet p) = 0;
};

class Pipe {
 public:
  struct Config {
    DataRate rate = DataRate::gbps(10);
    Duration delay = Duration::micros(50);
    /// Queue capacity in bytes; 0 means unbounded.
    Bytes queue_capacity = Bytes::kibi(256);
    /// Independent per-packet loss probability, applied at the head of the
    /// link (after queueing, before delivery).
    double loss_rate = 0.0;
  };

  using Sink = std::function<void(Packet)>;
  /// Tap signature: the packet and the time it was observed.
  using Tap = std::function<void(const Packet&, TimePoint)>;

  Pipe(sim::Simulator& sim, Config cfg);

  /// Destination for delivered packets. Must be set before traffic flows.
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  /// Observability hooks. tx fires when serialisation starts (what tcpdump
  /// at the sender sees); rx fires at delivery (receiver vantage).
  void set_tx_tap(Tap tap) { tx_tap_ = std::move(tap); }
  void set_rx_tap(Tap tap) { rx_tap_ = std::move(tap); }

  /// RNG used for the loss model; defaults to a fixed-seed generator.
  void set_loss_rng(Rng rng) { loss_rng_ = rng; }

  /// Invoked when a packet finishes serialising onto the wire (regardless of
  /// whether the loss model then discards it). The NIC uses this to free tx
  /// ring space.
  using TxComplete = std::function<void(const Packet&)>;
  void set_tx_complete(TxComplete cb) { tx_complete_ = std::move(cb); }

  /// Offer a packet to the pipe. Drops (drop-tail) if the queue is full.
  void send(Packet p);

  /// Install (or, with nullptr, remove) a fault model. Non-owning: the
  /// model must outlive the pipe or detach itself first. With a model
  /// installed the built-in loss_rate check is bypassed.
  void set_fault_model(FaultModel* model) { fault_model_ = model; }
  FaultModel* fault_model() const { return fault_model_; }

  /// Deliver `p` to the sink after the pipe's propagation delay plus
  /// `extra`. Fault models use this to re-inject (possibly duplicated,
  /// corrupted or jittered) packets; counts as a delivered packet.
  void deliver(Packet p, Duration extra = Duration());

  /// Account a packet discarded in flight (loss model / fault layer).
  void count_lost(const Packet& p);

  // Counters.
  std::uint64_t delivered_packets() const { return delivered_packets_; }
  Bytes delivered_bytes() const { return delivered_bytes_; }
  std::uint64_t dropped_packets() const { return dropped_packets_; }
  std::uint64_t lost_packets() const { return lost_packets_; }
  Bytes queued_bytes() const { return queued_bytes_; }
  Bytes max_queued_bytes() const { return max_queued_bytes_; }

  const Config& config() const { return cfg_; }

  /// Change the link rate at runtime (used by experiments that vary the
  /// bottleneck). Takes effect for the next packet serialised.
  void set_rate(DataRate rate) { cfg_.rate = rate; }

 private:
  void start_transmission();
  void on_transmitted(Packet p);

  sim::Simulator& sim_;
  Config cfg_;
  FaultModel* fault_model_ = nullptr;
  Sink sink_;
  Tap tx_tap_;
  Tap rx_tap_;
  TxComplete tx_complete_;
  Rng loss_rng_{0xC0FFEEull};

  util::RingDeque<Packet> queue_;
  bool busy_ = false;
  Bytes queued_bytes_;
  Bytes max_queued_bytes_;
  std::uint64_t delivered_packets_ = 0;
  Bytes delivered_bytes_;
  std::uint64_t dropped_packets_ = 0;
  std::uint64_t lost_packets_ = 0;
};

}  // namespace stob::net
