// QUIC-lite transport over UDP datagrams.
//
// The paper notes (§2.3) that QUIC does not escape the problem TCP has:
// although it runs in user space over UDP, packet sizes are decided by
// QUIC's own PMTU discovery and transmission is scheduled by its congestion
// controller — the application still cannot dictate the wire sequence, and
// emerging QUIC segmentation offload recreates TSO behaviour. This module
// implements enough of QUIC to demonstrate that: streams, packet-number
// based loss detection, ACK frames, a PTO probe timer, congestion control
// (shared with TCP), pacing via EDT, and the same Stob policy hooks at
// packetisation time.
//
// Simplifications relative to RFC 9000: a 1-RTT-only handshake (the Initial
// is padded to 1200 B as the RFC requires), a single packet-number space,
// ACK frames that carry one contiguous range, and no flow control (streams
// are assumed adequately buffered).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "core/policy.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "stack/host.hpp"
#include "tcp/congestion.hpp"
#include "tcp/rtt.hpp"

namespace stob::quic {

class QuicConnection {
 public:
  struct Config {
    std::int64_t max_payload = 1350;  ///< QUIC datagram payload (PMTU - overhead)
    std::string cca = "cubic";
    bool pacing_enabled = true;
    int ack_every = 2;                          ///< ack-eliciting packets per ACK
    Duration ack_delay = Duration::millis(25);
    int packet_threshold = 3;                   ///< PN reordering threshold
    core::Policy* policy = nullptr;             ///< Stob hook (not owned)
    tcp::RttEstimator::Config rtt;
  };

  struct Stats {
    std::uint64_t packets_sent = 0;
    std::uint64_t packets_lost = 0;
    std::uint64_t pto_fires = 0;
    std::uint64_t acks_sent = 0;
    Bytes bytes_sent;
    Bytes stream_bytes_delivered;
  };

  QuicConnection(stack::Host& host, Config cfg);
  ~QuicConnection();
  QuicConnection(const QuicConnection&) = delete;
  QuicConnection& operator=(const QuicConnection&) = delete;

  /// Client-side open. The Initial is padded to 1200 bytes.
  void connect(net::HostId dst, net::Port dst_port);

  /// Server-side accept of a client's first datagram. Equivalent to
  /// begin_accept() + complete_accept(); QuicListener uses the staged form
  /// so the application can attach callbacks in between.
  void accept(const net::Packet& initial);
  void begin_accept(const net::FlowKey& client_flow);
  void complete_accept(const net::Packet& initial);

  /// Append `n` bytes to `stream_id`'s send queue.
  void send_stream(std::uint64_t stream_id, Bytes n);

  /// Close the stream after its queued data (FIN bit on the last frame).
  void finish_stream(std::uint64_t stream_id);

  // Application callbacks.
  std::function<void()> on_connected;
  /// (stream, newly in-order bytes, fin_reached)
  std::function<void(std::uint64_t, Bytes, bool)> on_stream_data;

  bool established() const { return established_; }
  const net::FlowKey& key() const { return key_; }
  const Stats& stats() const { return stats_; }
  Bytes cwnd() const { return cca_->cwnd(); }
  Duration srtt() const { return rtt_.srtt(); }
  Bytes inflight() const { return Bytes(inflight_); }
  /// Consecutive PTO fires without forward progress (exponential backoff
  /// exponent); reset to 0 by the next newly-acked byte.
  int pto_backoff() const { return pto_backoff_; }

 private:
  struct SendStream {
    std::deque<std::pair<std::uint64_t, std::int64_t>> pending;  // (offset, len)
    std::uint64_t next_offset = 0;
    std::int64_t queued = 0;
    bool fin_queued = false;
    std::uint64_t fin_offset = 0;
    bool fin_sent_pure = false;  // a zero-length FIN frame is in flight
  };

  struct RecvStream {
    std::uint64_t delivered = 0;
    std::map<std::uint64_t, std::uint64_t> ooo;  // start -> end
    bool fin_known = false;
    std::uint64_t fin_offset = 0;
    bool fin_delivered = false;
  };

  struct SentPacket {
    std::uint64_t pn = 0;
    TimePoint sent;
    Bytes size;
    bool ack_eliciting = false;
    std::vector<net::QuicStreamFrame> stream_frames;
    std::int64_t delivered_at_send = 0;
  };

  void open_common(net::HostId dst, net::Port dst_port, net::Port src_port);
  void handle_datagram(net::Packet p);
  void process_ack(const net::QuicAckFrame& ack);
  void process_stream_frame(const net::QuicStreamFrame& frame);
  void detect_losses(std::uint64_t largest_acked, TimePoint now);
  void requeue_lost(const SentPacket& packet);

  void send_pending();
  /// Builds and transmits one packet; returns bytes of stream payload sent.
  std::int64_t emit_packet(bool force_padding_to_initial);
  void send_ack_now();
  void maybe_ack();
  void arm_pto();
  void on_pto_fire();

  stack::Host& host_;
  sim::Simulator& sim_;
  Config cfg_;
  net::FlowKey key_;
  bool established_ = false;
  bool is_client_ = false;
  Stats stats_;

  std::unique_ptr<tcp::CongestionControl> cca_;
  tcp::RttEstimator rtt_;

  // Sender.
  std::uint64_t next_pn_ = 0;
  std::map<std::uint64_t, SentPacket> sent_;  // unacked packets by PN
  std::int64_t inflight_ = 0;
  std::map<std::uint64_t, SendStream> send_streams_;
  TimePoint pacing_next_ = TimePoint::zero();
  sim::EventId pto_timer_;
  bool pto_armed_ = false;
  int pto_backoff_ = 0;
  std::int64_t delivered_total_ = 0;

  // Receiver.
  std::uint64_t largest_received_ = 0;
  bool any_received_ = false;
  std::uint64_t recv_contiguous_ = 0;  // largest PN below which all received
  std::map<std::uint64_t, RecvStream> recv_streams_;
  int unacked_eliciting_ = 0;
  sim::EventId ack_timer_;
  bool ack_armed_ = false;
};

/// Accepts incoming QUIC connections on a UDP port; owns them.
class QuicListener {
 public:
  using AcceptCb = std::function<void(QuicConnection&)>;

  QuicListener(stack::Host& host, net::Port port, QuicConnection::Config conn_cfg);
  ~QuicListener();

  void set_accept_callback(AcceptCb cb) { accept_cb_ = std::move(cb); }
  std::size_t connection_count() const { return conns_.size(); }

 private:
  void on_packet(net::Packet p);

  stack::Host& host_;
  net::Port port_;
  QuicConnection::Config conn_cfg_;
  AcceptCb accept_cb_;
  std::vector<std::unique_ptr<QuicConnection>> conns_;
};

}  // namespace stob::quic
