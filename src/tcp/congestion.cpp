#include "tcp/congestion.hpp"

#include <stdexcept>

#include "tcp/bbr.hpp"
#include "tcp/cubic.hpp"
#include "tcp/reno.hpp"

namespace stob::tcp {

std::unique_ptr<CongestionControl> make_congestion_control(const std::string& name, Bytes mss,
                                                           Bytes initial_window) {
  if (name == "reno") return std::make_unique<RenoCc>(mss, initial_window);
  if (name == "cubic") return std::make_unique<CubicCc>(mss, initial_window);
  if (name == "bbr") return std::make_unique<BbrCc>(mss, initial_window);
  throw std::invalid_argument("unknown congestion control: " + name);
}

}  // namespace stob::tcp
