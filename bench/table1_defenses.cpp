// Reproduces Table 1 of the paper: the WF defense landscape — each
// defense's target, strategy and traffic-manipulation primitives — extended
// with *measured* numbers on the simulated 9-site dataset:
//
//   * bandwidth overhead (the paper quotes ~80% for FRONT and 309% for
//     QCSD-style padding; padding-based defenses should dominate here),
//   * latency overhead (timing defenses trade time instead of bytes),
//   * residual k-FP accuracy (protection actually delivered).
//
// This is the quantitative backbone of the paper's §2.3 argument: current
// defenses lean on padding because stacks offer no robust timing/sizing
// control, and padding is the expensive primitive.
//
// Runs on the parallel experiment engine (src/exp/): trace collection is a
// (site x sample) job grid and each defense's overhead + k-FP evaluation is
// one job, so output is byte-identical for any --jobs value.
//
// Flags: --jobs N (default hardware concurrency), --check-determinism,
// --manifest PATH / --trace-events PATH (either turns the span profiler on
// and exports a run manifest / Chrome trace_event timeline).
// Environment knobs: STOB_SAMPLES (default 24), STOB_TREES (default 60),
// STOB_FOLDS (default 3), STOB_SEED, STOB_JOBS.
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "defenses/baselines.hpp"
#include "exp/experiment.hpp"
#include "exp/worker_pool.hpp"
#include "obs/manifest.hpp"
#include "obs/prof.hpp"
#include "wf/kfp.hpp"
#include "workload/page_load.hpp"

namespace {

using namespace stob;

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoll(v) : fallback;
}

struct DefenseRow {
  std::string name, target, strategy, manipulation;
  defenses::Overhead overhead;
  wf::EvalResult eval;
};

}  // namespace

int main(int argc, char** argv) {
  const auto samples = static_cast<std::size_t>(env_int("STOB_SAMPLES", 24));
  const auto trees = static_cast<std::size_t>(env_int("STOB_TREES", 60));
  const auto folds = static_cast<std::size_t>(env_int("STOB_FOLDS", 3));
  const auto seed = static_cast<std::uint64_t>(env_int("STOB_SEED", 20251117));
  const exp::Cli cli = exp::parse_cli(argc, argv);
  const std::size_t jobs = cli.jobs == 0 ? exp::default_jobs() : cli.jobs;

  obs::Profiler prof;
  std::optional<obs::ScopedProfiler> prof_guard;
  if (cli.profile()) prof_guard.emplace(prof);

  std::printf("=== Table 1: WF defense summary with measured overheads ===\n");
  // Worker count goes to stderr: stdout must be byte-identical for any
  // --jobs value (the determinism contract the engine provides).
  std::fprintf(stderr, "table1_defenses: running with %zu jobs\n", jobs);
  std::printf("dataset: 9 simulated sites x %zu samples; k-FP %zu trees, %zu folds\n\n",
              samples, trees, folds);

  exp::ExperimentGrid grid;
  grid.sites = workload::nine_sites();
  grid.samples = samples;
  grid.base_seed = seed;
  exp::RunOptions run;
  run.jobs = jobs;
  run.check_determinism = cli.check_determinism;
  const wf::Dataset data = [&] {
    obs::ProfSpan span("collect");
    return exp::to_dataset(exp::run_grid(grid, run)).sanitized_by_download_size(0.75);
  }();

  wf::KFingerprint::Config kfp_cfg;
  kfp_cfg.forest.num_trees = trees;

  // One evaluation job per defense (index 0 = undefended baseline); each is
  // seeded exactly as the serial loop was, so the numbers match any --jobs.
  const std::vector<std::unique_ptr<defenses::TraceDefense>> all = defenses::all_defenses();
  const std::vector<DefenseRow> rows = [&] {
    obs::ProfSpan span("evaluate");
    return exp::run_ordered<DefenseRow>(
      all.size() + 1, jobs, [&](std::size_t i) {
        DefenseRow row;
        if (i == 0) {
          row.name = "(none)";
          row.eval = wf::cross_validate(data, kfp_cfg, folds, seed);
          return row;
        }
        const defenses::TraceDefense& defense = *all[i - 1];
        row.name = defense.name();
        row.target = defense.target();
        row.strategy = defense.strategy();
        row.manipulation = defense.manipulations().describe();
        Rng rng(seed ^ 0xD3F3ull);
        row.overhead = defenses::measure_overhead(data, defense, rng);
        Rng rng2(seed ^ 0xD3F3ull);
        const wf::Dataset defended =
            data.transformed([&](const wf::Trace& t) { return defense.apply(t, rng2); });
        row.eval = wf::cross_validate(defended, kfp_cfg, folds, seed);
        return row;
      });
  }();

  std::printf("%-12s %-6s %-15s %-24s %9s %9s %10s\n", "Defense", "Target", "Strategy",
              "Manipulation", "BW-ovh", "Lat-ovh", "kFP-acc");
  std::printf("%-12s %-6s %-15s %-24s %9s %9s %9.3f\n", "(none)", "-", "-", "-", "-", "-",
              rows[0].eval.mean_accuracy);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const DefenseRow& row = rows[i];
    std::printf("%-12s %-6s %-15s %-24s %8.1f%% %8.1f%% %9.3f\n", row.name.c_str(),
                row.target.c_str(), row.strategy.c_str(), row.manipulation.c_str(),
                row.overhead.bandwidth * 100.0, row.overhead.latency * 100.0,
                row.eval.mean_accuracy);
  }

  std::printf("\nReference points from the literature: FRONT ~80%% bandwidth overhead,\n");
  std::printf("QCSD-style padding ~309%%; timing-only defenses cost 0%% bandwidth (the\n");
  std::printf("paper's case for stack-level timing/sizing control instead of padding).\n");

  if (cli.profile()) {
    prof_guard.reset();  // all spans closed; stop recording before export
    if (!cli.manifest_path.empty()) {
      obs::RunManifest m = obs::build_manifest("table1_defenses", prof, nullptr, jobs, seed);
      m.set_config("samples", std::to_string(samples));
      m.set_config("trees", std::to_string(trees));
      m.set_config("folds", std::to_string(folds));
      m.set_config("defenses", std::to_string(all.size() + 1));
      m.write(cli.manifest_path);
      std::fprintf(stderr, "table1_defenses: wrote %s\n", cli.manifest_path.c_str());
    }
    if (!cli.trace_events_path.empty()) {
      obs::write_trace_event(cli.trace_events_path, prof.records(), "table1_defenses");
      std::fprintf(stderr, "table1_defenses: wrote %s\n", cli.trace_events_path.c_str());
    }
  }
  return 0;
}
