# Empty dependencies file for censorship_eval.
# This may be replaced when dependencies are built.
