#include "wf/decision_tree.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace stob::wf {

namespace {

double gini(std::span<const double> counts, double total) {
  if (total <= 0) return 0.0;
  double acc = 0.0;
  for (double c : counts) {
    const double p = c / total;
    acc += p * p;
  }
  return 1.0 - acc;
}

}  // namespace

void DecisionTree::fit(const TrainView& view, std::span<const std::size_t> indices, Rng& rng) {
  if (view.num_classes <= 0 || view.rows.empty() || indices.empty()) {
    throw std::invalid_argument("DecisionTree::fit: empty training data");
  }
  num_classes_ = view.num_classes;
  nodes_.clear();
  dists_.clear();
  depth_ = 0;
  std::vector<std::size_t> idx(indices.begin(), indices.end());
  build(view, idx, 0, idx.size(), 0, rng);
}

std::uint32_t DecisionTree::make_leaf(const TrainView& view, std::span<const std::size_t> idx) {
  Node node;
  node.feature = -1;
  node.dist_offset = static_cast<std::uint32_t>(dists_.size());
  std::vector<double> dist(static_cast<std::size_t>(num_classes_), 0.0);
  for (std::size_t i : idx) dist[static_cast<std::size_t>(view.labels[i])] += 1.0;
  const double total = static_cast<double>(idx.size());
  int best = 0;
  for (int c = 0; c < num_classes_; ++c) {
    dists_.push_back(dist[static_cast<std::size_t>(c)] / total);
    if (dist[static_cast<std::size_t>(c)] > dist[static_cast<std::size_t>(best)]) best = c;
  }
  node.majority = best;
  nodes_.push_back(node);
  return static_cast<std::uint32_t>(nodes_.size() - 1);
}

std::uint32_t DecisionTree::build(const TrainView& view, std::vector<std::size_t>& idx,
                                  std::size_t lo, std::size_t hi, int depth, Rng& rng) {
  depth_ = std::max(depth_, depth);
  const std::size_t n = hi - lo;
  const std::span<const std::size_t> here(idx.data() + lo, n);

  // Purity check.
  bool pure = true;
  for (std::size_t i = 1; i < n; ++i) {
    if (view.labels[here[i]] != view.labels[here[0]]) {
      pure = false;
      break;
    }
  }
  if (pure || depth >= cfg_.max_depth || n < cfg_.min_samples_split) {
    return make_leaf(view, here);
  }

  const std::size_t num_features = view.rows[0].size();
  std::size_t mtry = cfg_.max_features;
  if (mtry == 0) mtry = static_cast<std::size_t>(std::sqrt(static_cast<double>(num_features)));
  mtry = std::clamp<std::size_t>(mtry, 1, num_features);

  // Sample `mtry` distinct features (partial Fisher-Yates).
  std::vector<std::size_t> feats(num_features);
  std::iota(feats.begin(), feats.end(), 0);
  for (std::size_t i = 0; i < mtry; ++i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(i), static_cast<std::int64_t>(num_features - 1)));
    std::swap(feats[i], feats[j]);
  }

  // Exact best-split search over the sampled features.
  double best_score = std::numeric_limits<double>::infinity();
  std::int32_t best_feature = -1;
  double best_threshold = 0.0;

  std::vector<std::pair<double, int>> vals(n);
  std::vector<double> left_counts(static_cast<std::size_t>(num_classes_));
  std::vector<double> right_counts(static_cast<std::size_t>(num_classes_));

  for (std::size_t fi = 0; fi < mtry; ++fi) {
    const std::size_t f = feats[fi];
    for (std::size_t i = 0; i < n; ++i) {
      vals[i] = {view.rows[here[i]][f], view.labels[here[i]]};
    }
    std::sort(vals.begin(), vals.end());
    if (vals.front().first == vals.back().first) continue;  // constant feature

    std::fill(left_counts.begin(), left_counts.end(), 0.0);
    std::fill(right_counts.begin(), right_counts.end(), 0.0);
    for (const auto& [v, c] : vals) right_counts[static_cast<std::size_t>(c)] += 1.0;

    for (std::size_t i = 0; i + 1 < n; ++i) {
      const auto c = static_cast<std::size_t>(vals[i].second);
      left_counts[c] += 1.0;
      right_counts[c] -= 1.0;
      if (vals[i].first == vals[i + 1].first) continue;  // not a valid cut
      const std::size_t nl = i + 1;
      const std::size_t nr = n - nl;
      if (nl < cfg_.min_samples_leaf || nr < cfg_.min_samples_leaf) continue;
      const double score = (static_cast<double>(nl) * gini(left_counts, static_cast<double>(nl)) +
                            static_cast<double>(nr) * gini(right_counts, static_cast<double>(nr))) /
                           static_cast<double>(n);
      if (score < best_score) {
        best_score = score;
        best_feature = static_cast<std::int32_t>(f);
        best_threshold = (vals[i].first + vals[i + 1].first) / 2.0;
      }
    }
  }

  if (best_feature < 0) return make_leaf(view, here);

  // Partition indices in place: <= threshold to the left.
  const auto mid_it = std::partition(idx.begin() + static_cast<std::ptrdiff_t>(lo),
                                     idx.begin() + static_cast<std::ptrdiff_t>(hi),
                                     [&](std::size_t i) {
                                       return view.rows[i][static_cast<std::size_t>(
                                                  best_feature)] <= best_threshold;
                                     });
  const auto mid = static_cast<std::size_t>(mid_it - idx.begin());
  if (mid == lo || mid == hi) return make_leaf(view, here);  // degenerate partition

  const auto node_index = static_cast<std::uint32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_index].feature = best_feature;
  nodes_[node_index].threshold = best_threshold;
  const std::uint32_t left = build(view, idx, lo, mid, depth + 1, rng);
  const std::uint32_t right = build(view, idx, mid, hi, depth + 1, rng);
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return node_index;
}

const DecisionTree::Node& DecisionTree::descend(std::span<const double> x) const {
  assert(!nodes_.empty());
  std::uint32_t cur = 0;
  while (nodes_[cur].feature >= 0) {
    const Node& nd = nodes_[cur];
    cur = x[static_cast<std::size_t>(nd.feature)] <= nd.threshold ? nd.left : nd.right;
  }
  return nodes_[cur];
}

int DecisionTree::predict(std::span<const double> x) const { return descend(x).majority; }

std::vector<double> DecisionTree::predict_proba(std::span<const double> x) const {
  const Node& leaf = descend(x);
  return std::vector<double>(
      dists_.begin() + leaf.dist_offset,
      dists_.begin() + leaf.dist_offset + static_cast<std::uint32_t>(num_classes_));
}

std::uint32_t DecisionTree::leaf_id(std::span<const double> x) const {
  std::uint32_t cur = 0;
  while (nodes_[cur].feature >= 0) {
    const Node& nd = nodes_[cur];
    cur = x[static_cast<std::size_t>(nd.feature)] <= nd.threshold ? nd.left : nd.right;
  }
  return cur;
}

}  // namespace stob::wf
