#include "exp/experiment.hpp"

#include <cstdlib>
#include <cstring>
#include <optional>
#include <stdexcept>

#include "exp/worker_pool.hpp"
#include "fault/invariants.hpp"
#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "util/log.hpp"

namespace stob::exp {

std::uint64_t job_seed(std::uint64_t base_seed, std::uint64_t job_index) {
  // Two rounds of splitmix64 over (base_seed, index): round one decorrelates
  // the base, round two folds the index in, so neighbouring jobs get
  // unrelated streams and job 0 of seed s != job 1 of seed s-1.
  auto mix = [](std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  };
  return mix(mix(base_seed) ^ job_index);
}

JobSpec ExperimentGrid::job(std::size_t index) const {
  JobSpec spec;
  spec.index = index;
  const std::size_t c = cca_axis();
  const std::size_t d = defense_axis();
  spec.cca = index % c;
  index /= c;
  spec.defense = index % d;
  index /= d;
  spec.sample = index % samples;
  index /= samples;
  spec.site = index % sites.size();
  spec.fault = index / sites.size();
  spec.seed = job_seed(base_seed, spec.index);
  return spec;
}

std::vector<JobSpec> ExperimentGrid::jobs() const {
  std::vector<JobSpec> out;
  out.reserve(job_count());
  for (std::size_t i = 0; i < job_count(); ++i) out.push_back(job(i));
  return out;
}

JobResult run_job(const ExperimentGrid& grid, const JobSpec& spec, const RunOptions& opts) {
  // Fresh per-job world: packet ids restart at 1, obs sinks are installed
  // on this thread only, and all randomness flows from the job seed.
  net::PacketIdScope id_scope;
  Rng rng(spec.seed);

  workload::PageLoadOptions page = opts.page;
  if (!grid.ccas.empty()) {
    page.client_conn.cca = grid.ccas[spec.cca];
    page.server_conn.cca = grid.ccas[spec.cca];
  }
  if (!grid.faults.empty()) page.path_faults = grid.faults[spec.fault];

  obs::MetricsRegistry registry;
  obs::TraceRecorder recorder(opts.trace_capacity > 0 ? opts.trace_capacity : 1);
  fault::StackInvariantChecker checker;
  std::optional<obs::ScopedMetrics> scoped_metrics;
  std::optional<obs::ScopedRecorder> scoped_recorder;
  std::optional<obs::ScopedListener> scoped_listener;
  if (opts.collect_metrics) scoped_metrics.emplace(registry);
  if (opts.trace_capacity > 0) scoped_recorder.emplace(recorder);
  if (opts.check_invariants) scoped_listener.emplace(checker);

  workload::PageLoadResult loaded = [&] {
    obs::ProfSpan span("page_load");
    return workload::run_page_load(grid.sites[spec.site], rng, page);
  }();

  JobResult result;
  result.spec = spec;
  result.trace = std::move(loaded.trace);
  result.page_load_time = loaded.page_load_time;
  result.response_bytes = loaded.response_bytes;
  result.objects_fetched = loaded.objects_fetched;
  result.completed = loaded.completed;
  result.sim_events = loaded.sim_events;
  if (!grid.defenses.empty()) {
    const DefenseAxis& axis = grid.defenses[spec.defense];
    if (axis.defense != nullptr) {
      obs::ProfSpan span("defense");
      result.trace = axis.defense->apply(result.trace, rng);
    }
  }
  if (opts.collect_metrics) result.metrics = registry.snapshot();
  if (opts.trace_capacity > 0) result.events = recorder.events();
  if (opts.check_invariants) {
    result.invariant_checks = checker.checks();
    result.invariant_violations = checker.violations();
    result.first_violation = checker.first_report();
  }
  return result;
}

std::vector<JobResult> run_grid(const ExperimentGrid& grid, const RunOptions& opts) {
  auto run_with = [&](std::size_t threads) {
    return run_ordered<JobResult>(grid.job_count(), threads,
                                  [&](std::size_t i) { return run_job(grid, grid.job(i), opts); });
  };
  std::vector<JobResult> results = [&] {
    obs::ProfSpan span("grid.run");
    return run_with(opts.jobs);
  }();
  if (opts.check_determinism) {
    obs::ProfSpan span("grid.verify");
    const std::vector<JobResult> serial = run_with(1);
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (!results_identical(results[i], serial[i])) {
        throw std::runtime_error("experiment engine determinism violation at job " +
                                 std::to_string(i));
      }
    }
  }
  return results;
}

bool results_identical(const JobResult& a, const JobResult& b) {
  return a.spec.index == b.spec.index && a.spec.seed == b.spec.seed && a.trace == b.trace &&
         a.page_load_time == b.page_load_time && a.response_bytes == b.response_bytes &&
         a.objects_fetched == b.objects_fetched && a.completed == b.completed &&
         a.sim_events == b.sim_events &&
         a.metrics == b.metrics && a.events == b.events &&
         a.invariant_checks == b.invariant_checks &&
         a.invariant_violations == b.invariant_violations &&
         a.first_violation == b.first_violation;
}

wf::Dataset to_dataset(const std::vector<JobResult>& results) {
  wf::Dataset data;
  for (const JobResult& r : results) {
    data.add(r.trace, static_cast<int>(r.spec.site));
  }
  return data;
}

namespace {

std::size_t parse_jobs(const std::string& flag, const std::string& value) {
  // Digits only: stoull would silently accept (and wrap) "-2", and "4x"
  // must not parse as 4.
  const bool all_digits =
      !value.empty() && value.find_first_not_of("0123456789") == std::string::npos;
  unsigned long long n = 0;
  if (all_digits) {
    try {
      n = std::stoull(value);
    } catch (const std::exception&) {
      throw std::invalid_argument("exp: " + flag + " value '" + value + "' out of range");
    }
  } else {
    throw std::invalid_argument("exp: " + flag + " expects a non-negative integer, got '" +
                                value + "'");
  }
  return static_cast<std::size_t>(n);
}

}  // namespace

Cli parse_cli(int argc, char** argv, const std::vector<FlagSpec>& extra_flags) {
  Cli cli;
  if (const char* env = std::getenv("STOB_JOBS")) {
    cli.jobs = parse_jobs("STOB_JOBS", env);
  }

  // Shared flags first, then the harness-specific ones.
  std::vector<FlagSpec> known = {{"--jobs", true},
                                 {"--check-determinism", false},
                                 {"--manifest", true},
                                 {"--trace-events", true}};
  known.insert(known.end(), extra_flags.begin(), extra_flags.end());

  std::map<std::string, int> seen;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    // Split "--flag=value" spellings; "--flag value" takes the next argv.
    std::string name = arg;
    std::optional<std::string> value;
    if (const auto eq = arg.find('='); eq != std::string::npos && arg.rfind("--", 0) == 0) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    }

    const FlagSpec* spec = nullptr;
    for (const FlagSpec& f : known) {
      if (f.name == name) {
        spec = &f;
        break;
      }
    }
    if (spec == nullptr) {
      throw std::invalid_argument("exp: unknown flag '" + arg +
                                  "' (use --flag or --flag=value; known flags: --jobs, "
                                  "--check-determinism, --manifest, --trace-events" +
                                  [&] {
                                    std::string s;
                                    for (const FlagSpec& f : extra_flags) s += ", " + f.name;
                                    return s;
                                  }() +
                                  ")");
    }
    if (spec->takes_value && !value.has_value()) {
      if (i + 1 >= argc) {
        throw std::invalid_argument("exp: flag '" + name + "' expects a value");
      }
      value = argv[++i];
    }
    if (!spec->takes_value && value.has_value()) {
      throw std::invalid_argument("exp: flag '" + name + "' does not take a value");
    }
    if (++seen[name] > 1) {
      STOB_WARN("exp") << "flag " << name << " given more than once; last value wins";
    }

    if (name == "--jobs") {
      cli.jobs = parse_jobs(name, *value);
    } else if (name == "--check-determinism") {
      cli.check_determinism = true;
    } else if (name == "--manifest") {
      cli.manifest_path = *value;
    } else if (name == "--trace-events") {
      cli.trace_events_path = *value;
    } else {
      cli.extra[name] = spec->takes_value ? *value : "1";
    }
  }
  return cli;
}

}  // namespace stob::exp
