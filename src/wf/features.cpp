#include "wf/features.hpp"

#include <algorithm>
#include <cmath>
#include <string_view>

#include "util/stats.hpp"
#include "wf/simd_kernels.hpp"

namespace stob::wf {

namespace {

/// Helper collecting (name, value) pairs so names and values never drift.
/// Values land in caller-owned storage via a write cursor, so a dataset's
/// rows go straight into the contiguous FeatureMatrix without a per-trace
/// vector in between.
class FeatureBuilder {
 public:
  explicit FeatureBuilder(std::span<double> out) : out_(out) {}

  void add(std::string_view name, double value) {
    if (cursor_ < out_.size()) out_[cursor_++] = std::isfinite(value) ? value : 0.0;
    if (names_ != nullptr) names_->emplace_back(name);
  }

  /// Summary-statistic bundle over a value list. Mean and stddev accumulate
  /// over the original order (their rounding depends on it); the order
  /// statistics share one sort of the list instead of re-sorting per
  /// quantile, which yields the same values.
  void add_stats(std::string_view prefix, std::span<const double> xs) {
    add2(prefix, "_mean", stats::mean(xs));
    add2(prefix, "_std", stats::stddev(xs));
    thread_local std::vector<double> sorted;
    sorted.assign(xs.begin(), xs.end());
    std::sort(sorted.begin(), sorted.end());
    add2(prefix, "_min", sorted.empty() ? 0.0 : sorted.front());
    add2(prefix, "_max", sorted.empty() ? 0.0 : sorted.back());
    add2(prefix, "_median", stats::percentile_sorted(sorted, 50.0));
    add2(prefix, "_p75", stats::percentile_sorted(sorted, 75.0));
  }

  void collect_names(std::vector<std::string>* names) { names_ = names; }
  bool collecting_names() const { return names_ != nullptr; }

 private:
  /// add() without building the concatenated name unless names are wanted.
  void add2(std::string_view prefix, std::string_view suffix, double value) {
    if (cursor_ < out_.size()) out_[cursor_++] = std::isfinite(value) ? value : 0.0;
    if (names_ != nullptr) {
      std::string name;
      name.reserve(prefix.size() + suffix.size());
      name.append(prefix).append(suffix);
      names_->push_back(std::move(name));
    }
  }

  std::span<double> out_;
  std::size_t cursor_ = 0;
  std::vector<std::string>* names_ = nullptr;
};

/// Per-thread extraction scratch. A million-trace streaming run calls
/// build() once per trace; reusing these buffers (capacity survives
/// clear()) removes ~20 heap allocations per trace from the hot path.
struct Scratch {
  std::vector<double> dir01;  // 1.0 for outgoing, 0.0 for incoming
  std::vector<double> in_times, out_times, all_times;
  std::vector<double> in_sizes, out_sizes;
  std::vector<double> out_positions, in_positions;
  std::vector<double> conc, conc30, conc30_alt;
  std::vector<double> bursts, in_bursts;
  std::vector<double> gap_all, gap_in, gap_out, gap_head;
  std::vector<double> sorted_times, pps;
};

/// gaps of ts into g via the pair-difference kernel (independent
/// subtractions — bit-identical to the sequential loop).
void fill_gaps(const std::vector<double>& ts, std::vector<double>& g) {
  g.resize(ts.size() > 1 ? ts.size() - 1 : 0);
  kernels::pair_diffs(ts.data(), ts.size(), g.data());
}

/// The single implementation walked both for names and values. The
/// vectorizable pieces (directional counts, chunk sums, burst thresholds,
/// size bands, inter-arrival gaps) go through kernels::*, all of which are
/// exact, so values are bit-identical to the pre-SIMD scalar loops.
void build(const Trace& trace, FeatureBuilder& fb) {
  thread_local Scratch s;
  const auto& pkts = trace.packets();
  const double n = static_cast<double>(pkts.size());

  s.dir01.clear();
  s.all_times.clear();
  s.in_times.clear();
  s.out_times.clear();
  s.in_sizes.clear();
  s.out_sizes.clear();
  s.dir01.reserve(pkts.size());
  s.all_times.reserve(pkts.size());
  for (const PacketRecord& p : pkts) {
    s.all_times.push_back(p.time);
    if (p.direction > 0) {
      s.dir01.push_back(1.0);
      s.out_times.push_back(p.time);
      s.out_sizes.push_back(static_cast<double>(p.size));
    } else {
      s.dir01.push_back(0.0);
      s.in_times.push_back(p.time);
      s.in_sizes.push_back(static_cast<double>(p.size));
    }
  }

  // ---- 1. Counts and fractions.
  fb.add("count_total", n);
  fb.add("count_in", static_cast<double>(s.in_times.size()));
  fb.add("count_out", static_cast<double>(s.out_times.size()));
  fb.add("frac_in", n > 0 ? static_cast<double>(s.in_times.size()) / n : 0.0);
  fb.add("frac_out", n > 0 ? static_cast<double>(s.out_times.size()) / n : 0.0);

  // ---- 2. First/last 30 packet composition (0/1 sums: exact).
  const std::size_t head = std::min<std::size_t>(30, pkts.size());
  const double head_out = kernels::sum_ints(s.dir01.data(), head);
  fb.add("first30_in", static_cast<double>(head) - head_out);
  fb.add("first30_out", head_out);
  const std::size_t tail = std::min<std::size_t>(30, pkts.size());
  const double tail_out = kernels::sum_ints(s.dir01.data() + (pkts.size() - tail), tail);
  fb.add("last30_in", static_cast<double>(tail) - tail_out);
  fb.add("last30_out", tail_out);

  // ---- 3. Packet ordering: for the i-th outgoing (resp. incoming) packet,
  // its absolute position in the trace.
  s.out_positions.clear();
  s.in_positions.clear();
  for (std::size_t i = 0; i < pkts.size(); ++i) {
    (pkts[i].direction > 0 ? s.out_positions : s.in_positions).push_back(static_cast<double>(i));
  }
  fb.add("order_out_mean", stats::mean(s.out_positions));
  fb.add("order_out_std", stats::stddev(s.out_positions));
  fb.add("order_in_mean", stats::mean(s.in_positions));
  fb.add("order_in_std", stats::stddev(s.in_positions));

  // ---- 4. Concentration of outgoing packets (chunks of 20 packets).
  s.conc.clear();
  for (std::size_t base = 0; base < pkts.size(); base += 20) {
    const std::size_t len = std::min<std::size_t>(20, pkts.size() - base);
    s.conc.push_back(kernels::sum_ints(s.dir01.data() + base, len));
  }
  fb.add_stats("conc20_out", s.conc);
  fb.add("conc20_out_sum", stats::sum(s.conc));

  // Alternative concentration: chunks of 30, decimated (k-FP's "alternative
  // concentration" keeps every other chunk to reduce dimensionality).
  s.conc30.clear();
  for (std::size_t base = 0; base < pkts.size(); base += 30) {
    const std::size_t len = std::min<std::size_t>(30, pkts.size() - base);
    s.conc30.push_back(kernels::sum_ints(s.dir01.data() + base, len));
  }
  s.conc30_alt.clear();
  for (std::size_t i = 0; i < s.conc30.size(); i += 2) s.conc30_alt.push_back(s.conc30[i]);
  fb.add_stats("conc30alt_out", s.conc30_alt);

  // ---- 5. Bursts: maximal runs of consecutive outgoing packets.
  s.bursts.clear();
  double run = 0;
  for (const PacketRecord& p : pkts) {
    if (p.direction > 0) {
      run += 1;
    } else if (run > 0) {
      s.bursts.push_back(run);
      run = 0;
    }
  }
  if (run > 0) s.bursts.push_back(run);
  fb.add("burst_count", static_cast<double>(s.bursts.size()));
  fb.add_stats("burst_len", s.bursts);
  fb.add("burst_gt5",
         static_cast<double>(kernels::count_gt(s.bursts.data(), s.bursts.size(), 5.0)));
  fb.add("burst_gt10",
         static_cast<double>(kernels::count_gt(s.bursts.data(), s.bursts.size(), 10.0)));
  fb.add("burst_gt15",
         static_cast<double>(kernels::count_gt(s.bursts.data(), s.bursts.size(), 15.0)));

  // Incoming bursts as well (download trains are site-specific).
  s.in_bursts.clear();
  run = 0;
  for (const PacketRecord& p : pkts) {
    if (p.direction < 0) {
      run += 1;
    } else if (run > 0) {
      s.in_bursts.push_back(run);
      run = 0;
    }
  }
  if (run > 0) s.in_bursts.push_back(run);
  fb.add("in_burst_count", static_cast<double>(s.in_bursts.size()));
  fb.add_stats("in_burst_len", s.in_bursts);

  // ---- 6. Inter-arrival times: total / in / out.
  fill_gaps(s.all_times, s.gap_all);
  fill_gaps(s.in_times, s.gap_in);
  fill_gaps(s.out_times, s.gap_out);
  fb.add_stats("iat_all", s.gap_all);
  fb.add_stats("iat_in", s.gap_in);
  fb.add_stats("iat_out", s.gap_out);

  // First-20-gap statistics (early-connection behaviour, relevant to the
  // censorship setting where only a prefix is observed).
  s.gap_head.assign(s.gap_all.begin(),
                    s.gap_all.begin() + std::min<std::size_t>(20, s.gap_all.size()));
  fb.add_stats("iat_first20", s.gap_head);

  // ---- 7. Transmission time quantiles. One sort per list feeds all three
  // quantiles (same sorted order, hence same interpolated values, as the
  // sort-per-call stats::percentile).
  fb.add("time_total", trace.duration());
  const auto sort_times = [&s](const std::vector<double>& ts) {
    s.sorted_times.assign(ts.begin(), ts.end());
    std::sort(s.sorted_times.begin(), s.sorted_times.end());
  };
  sort_times(s.all_times);
  fb.add("time_q25_all", stats::percentile_sorted(s.sorted_times, 25.0));
  fb.add("time_q50_all", stats::percentile_sorted(s.sorted_times, 50.0));
  fb.add("time_q75_all", stats::percentile_sorted(s.sorted_times, 75.0));
  sort_times(s.in_times);
  fb.add("time_q25_in", stats::percentile_sorted(s.sorted_times, 25.0));
  fb.add("time_q50_in", stats::percentile_sorted(s.sorted_times, 50.0));
  fb.add("time_q75_in", stats::percentile_sorted(s.sorted_times, 75.0));
  sort_times(s.out_times);
  fb.add("time_q25_out", stats::percentile_sorted(s.sorted_times, 25.0));
  fb.add("time_q50_out", stats::percentile_sorted(s.sorted_times, 50.0));
  fb.add("time_q75_out", stats::percentile_sorted(s.sorted_times, 75.0));

  // ---- 8. Packets per second.
  s.pps.clear();
  if (!s.all_times.empty()) {
    const auto seconds = static_cast<std::size_t>(s.all_times.back()) + 1;
    s.pps.assign(std::min<std::size_t>(seconds, 120), 0.0);  // cap at 2 minutes
    for (double t : s.all_times) {
      const auto sec = static_cast<std::size_t>(t);
      if (sec < s.pps.size()) s.pps[sec] += 1.0;
    }
  }
  fb.add_stats("pps", s.pps);
  fb.add("pps_sum", stats::sum(s.pps));

  // ---- 9. Volume (sizes are visible to the adversary even under TLS).
  fb.add("bytes_total", static_cast<double>(trace.total_bytes()));
  fb.add("bytes_in", static_cast<double>(trace.incoming_bytes()));
  fb.add("bytes_out", static_cast<double>(trace.outgoing_bytes()));
  fb.add_stats("size_in", s.in_sizes);
  fb.add_stats("size_out", s.out_sizes);

  // Size histogram coarse shape: share of incoming packets in size bands.
  double in_small = 0, in_mid = 0, in_full = 0;
  kernels::band_counts(s.in_sizes.data(), s.in_sizes.size(), 600.0, 1400.0, &in_small, &in_mid,
                       &in_full);
  const double in_n = std::max<double>(1.0, static_cast<double>(s.in_sizes.size()));
  fb.add("in_size_frac_small", in_small / in_n);
  fb.add("in_size_frac_mid", in_mid / in_n);
  fb.add("in_size_frac_full", in_full / in_n);

  // ---- 10. Cumulative byte milestones: time to reach fractions of the
  // total download (robust early-trace features).
  const double total_in_bytes = static_cast<double>(trace.incoming_bytes());
  for (double frac : {0.25, 0.5, 0.75}) {
    double reached = 0.0;
    double acc = 0.0;
    for (const PacketRecord& p : pkts) {
      if (p.direction < 0) {
        acc += static_cast<double>(p.size);
        if (total_in_bytes > 0 && acc >= frac * total_in_bytes) {
          reached = p.time;
          break;
        }
      }
    }
    if (fb.collecting_names()) {
      fb.add("time_to_in_frac_" + std::to_string(static_cast<int>(frac * 100)), reached);
    } else {
      fb.add({}, reached);
    }
  }
}

std::vector<std::string> compute_names() {
  std::vector<std::string> names;
  FeatureBuilder fb({});
  fb.collect_names(&names);
  build(Trace{}, fb);
  return names;
}

}  // namespace

const std::vector<std::string>& kfp_feature_names() {
  static const std::vector<std::string> names = compute_names();
  return names;
}

std::size_t kfp_feature_count() { return kfp_feature_names().size(); }

std::vector<double> kfp_features(const Trace& trace) {
  std::vector<double> out(kfp_feature_count(), 0.0);
  FeatureBuilder fb(out);
  build(trace, fb);
  return out;
}

void kfp_features_into(const Trace& trace, std::span<double> out) {
  FeatureBuilder fb(out);
  build(trace, fb);
}

FeatureMatrix kfp_features(const Dataset& dataset) {
  FeatureMatrix m(dataset.size(), kfp_feature_count());
  for (std::size_t i = 0; i < dataset.size(); ++i) kfp_features_into(dataset.trace(i), m.row(i));
  return m;
}

}  // namespace stob::wf
