#include "stack/host.hpp"

#include "util/log.hpp"

namespace stob::stack {

namespace {

std::unique_ptr<Qdisc> default_qdisc() { return std::make_unique<FqQdisc>(); }

}  // namespace

Host::Host(sim::Simulator& sim, net::HostId id) : Host(sim, id, Config{}) {}

Host::Host(sim::Simulator& sim, net::HostId id, Config cfg)
    : sim_(sim),
      id_(id),
      cpu_(cfg.cpu),
      nic_(sim, cfg.make_qdisc ? cfg.make_qdisc() : default_qdisc(), cfg.nic) {}

void Host::receive(net::Packet p) {
  // Checksum validation: a payload damaged in transit (fault layer) never
  // reaches the transport — it surfaces there as loss, while the wire trace
  // still shows the delivery.
  if (p.corrupted) {
    ++checksum_drops_;
    STOB_DEBUG("host") << "host " << id_ << " checksum drop " << p;
    return;
  }
  auto it = flows_.find(p.flow);
  if (it != flows_.end()) {
    it->second(std::move(p));
    return;
  }
  auto lit = listeners_.find(ListenerKey{p.flow.dst_port, p.flow.proto});
  if (lit != listeners_.end()) {
    lit->second(std::move(p));
    return;
  }
  ++unmatched_;
  STOB_DEBUG("host") << "host " << id_ << " unmatched " << p;
}

bool Host::register_flow(const net::FlowKey& incoming, PacketHandler handler) {
  return flows_.emplace(incoming, std::move(handler)).second;
}

void Host::unregister_flow(const net::FlowKey& incoming) { flows_.erase(incoming); }

bool Host::bind_listener(net::Port port, net::Proto proto, PacketHandler handler) {
  return listeners_.emplace(ListenerKey{port, proto}, std::move(handler)).second;
}

void Host::unbind_listener(net::Port port, net::Proto proto) {
  listeners_.erase(ListenerKey{port, proto});
}

}  // namespace stob::stack
