// Bulk-transfer workload (iperf3-like), used by the Figure 3 reproduction:
// one TCP connection saturates a fast link while the sender's CPU model
// charges per-segment / per-wire-packet / per-byte costs, so throughput
// degrades as Stob policies shrink TSO and packet sizes.
#pragma once

#include "core/policy.hpp"
#include "stack/host_pair.hpp"
#include "tcp/tcp_connection.hpp"

namespace stob::workload {

struct BulkTransferOptions {
  DataRate link_rate = DataRate::gbps(100);
  Duration one_way_delay = Duration::micros(25);  // same-rack servers
  Bytes queue_capacity = Bytes::mebi(8);          // bottleneck buffer
  stack::CpuModel::Costs sender_cpu;              // zero = CPU not modelled
  tcp::TcpConnection::Config conn;                // cca, policy, TSO settings
  Duration warmup = Duration::millis(20);
  Duration measure = Duration::millis(50);
};

struct BulkTransferResult {
  DataRate goodput;               ///< receiver payload bytes / measure time
  std::uint64_t wire_packets = 0; ///< packets on the wire during measurement
  std::uint64_t tso_segments = 0; ///< TSO splits performed
  double sender_cpu_utilisation = 0.0;  ///< busy fraction of the measure window
};

/// Run a single-connection bulk transfer and measure steady-state goodput
/// over the measurement window (after warmup).
BulkTransferResult run_bulk_transfer(const BulkTransferOptions& options);

}  // namespace stob::workload
