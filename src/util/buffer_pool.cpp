#include "util/buffer_pool.hpp"

#include <bit>
#include <new>

namespace stob::mem {

namespace {

// Buckets cover 32 B .. 64 KiB in powers of two; anything larger is rare
// (jumbo frame lists under pathological fault profiles) and goes straight
// to the global allocator.
constexpr std::size_t kMinShift = 5;   // 32 B
constexpr std::size_t kMaxShift = 16;  // 64 KiB
constexpr std::size_t kBuckets = kMaxShift - kMinShift + 1;
// Per-bucket cache cap in *bytes*, not entries: small buckets may park many
// buffers (packet-sized events arrive in thousand-deep bursts from the pipe
// serialiser) while large buckets park only a few. Worst case parked memory
// per thread ≈ kBucketCapBytes × number of buckets ≈ 3 MiB.
constexpr std::size_t kBucketCapBytes = std::size_t{256} * 1024;

struct FreeBlock {
  FreeBlock* next;
};

struct ThreadPool {
  FreeBlock* buckets[kBuckets] = {};
  std::size_t counts[kBuckets] = {};
  PoolStats stats;

  ~ThreadPool() { purge(); }

  void purge() noexcept {
    for (std::size_t b = 0; b < kBuckets; ++b) {
      while (buckets[b] != nullptr) {
        FreeBlock* blk = buckets[b];
        buckets[b] = blk->next;
        ::operator delete(blk, std::align_val_t(alignof(std::max_align_t)));
      }
      counts[b] = 0;
    }
    stats.cached = 0;
  }
};

thread_local ThreadPool t_pool;

/// Bucket index for a request, or kBuckets for "too big, don't pool".
std::size_t bucket_for(std::size_t bytes) {
  if (bytes < (std::size_t{1} << kMinShift)) return 0;
  if (bytes > (std::size_t{1} << kMaxShift)) return kBuckets;
  const auto width = static_cast<std::size_t>(std::bit_width(bytes - 1));
  return width - kMinShift;
}

}  // namespace

void* pool_alloc(std::size_t bytes) {
  ThreadPool& pool = t_pool;
  const std::size_t b = bucket_for(bytes);
  ++pool.stats.outstanding;
  if (b < kBuckets && pool.buckets[b] != nullptr) {
    FreeBlock* blk = pool.buckets[b];
    pool.buckets[b] = blk->next;
    --pool.counts[b];
    --pool.stats.cached;
    ++pool.stats.hits;
    return blk;
  }
  ++pool.stats.misses;
  const std::size_t alloc_bytes = b < kBuckets ? (std::size_t{1} << (b + kMinShift))
                                               : (bytes > 0 ? bytes : 1);
  return ::operator new(alloc_bytes, std::align_val_t(alignof(std::max_align_t)));
}

void pool_free(void* p, std::size_t bytes) noexcept {
  if (p == nullptr) return;
  ThreadPool& pool = t_pool;
  const std::size_t b = bucket_for(bytes);
  --pool.stats.outstanding;
  if (b < kBuckets && pool.counts[b] < (kBucketCapBytes >> (b + kMinShift))) {
    auto* blk = static_cast<FreeBlock*>(p);
    blk->next = pool.buckets[b];
    pool.buckets[b] = blk;
    ++pool.counts[b];
    ++pool.stats.cached;
    return;
  }
  ++pool.stats.spills;
  ::operator delete(p, std::align_val_t(alignof(std::max_align_t)));
}

PoolStats pool_stats() { return t_pool.stats; }

void pool_purge() noexcept { t_pool.purge(); }

}  // namespace stob::mem
