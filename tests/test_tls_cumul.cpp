// Tests for the TLS record layer and the CUMUL attack (plus their
// integration with the page-load workload).
#include <gtest/gtest.h>

#include "stack/tls_record.hpp"
#include "wf/cumul.hpp"
#include "workload/page_load.hpp"

namespace stob {
namespace {

// ------------------------------------------------------------- TLS records

TEST(TlsRecord, SingleRecordOverhead) {
  EXPECT_EQ(stack::tls_sealed_size(1000), 1022);
  EXPECT_EQ(stack::tls_sealed_size(0), 0);
}

TEST(TlsRecord, FramingSplitsAtMaxRecord) {
  // 40 kB -> 16k + 16k + 8k records, each +22.
  EXPECT_EQ(stack::tls_sealed_size(40'000), 40'000 + 3 * 22);
}

TEST(TlsRecord, PaddingRoundsUp) {
  stack::TlsConfig cfg;
  cfg.pad_to = 512;
  EXPECT_EQ(stack::tls_sealed_size(1000, cfg), 1024 + 22);
  EXPECT_EQ(stack::tls_sealed_size(512, cfg), 512 + 22);
}

TEST(TlsRecord, PaddingNeverExceedsMaxRecord) {
  stack::TlsConfig cfg;
  cfg.pad_to = 5000;
  cfg.max_record = 16384;
  // 16384 plaintext would pad to 20000, clamped to the record limit.
  EXPECT_EQ(stack::tls_sealed_size(16'384, cfg), 16'384 + 22);
}

TEST(TlsSession, SealOpenRoundTrip) {
  stack::TlsSession tx;
  const std::int64_t wire = tx.seal(50'000);
  EXPECT_EQ(wire, stack::tls_sealed_size(50'000));
  // Deliver the ciphertext in awkward chunks; plaintext totals must match.
  std::int64_t remaining = wire;
  std::int64_t plaintext = 0;
  while (remaining > 0) {
    const std::int64_t chunk = std::min<std::int64_t>(remaining, 1448);
    plaintext += tx.open(chunk);
    remaining -= chunk;
  }
  EXPECT_EQ(plaintext, 50'000);
  EXPECT_EQ(tx.buffered_wire_bytes(), 0);
}

TEST(TlsSession, PartialRecordWithheld) {
  stack::TlsSession tx;
  tx.seal(1000);  // one 1022-byte record
  EXPECT_EQ(tx.open(1021), 0);  // one byte short: cannot authenticate yet
  EXPECT_EQ(tx.open(1), 1000);
}

TEST(TlsSession, PaddingAccounted) {
  stack::TlsConfig cfg;
  cfg.pad_to = 4096;
  stack::TlsSession tx(cfg);
  tx.seal(1000);
  EXPECT_EQ(tx.padding_bytes(), 4096 - 1000);
  EXPECT_EQ(tx.records_sealed(), 1u);
}

TEST(TlsSession, InterleavedSealsStayOrdered) {
  stack::TlsSession tx;
  const std::int64_t w1 = tx.seal(100);
  const std::int64_t w2 = tx.seal(200);
  EXPECT_EQ(tx.open(w1), 100);
  EXPECT_EQ(tx.open(w2), 200);
}

TEST(PageLoadTls, RecordsInflateTraffic) {
  workload::PageLoadOptions plain;
  workload::PageLoadOptions with_tls = plain;
  with_tls.tls_records = true;
  const auto& site = workload::nine_sites()[7];
  Rng r1(5), r2(5);
  const auto a = workload::run_page_load(site, r1, plain);
  const auto b = workload::run_page_load(site, r2, with_tls);
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  EXPECT_GT(b.trace.incoming_bytes(), a.trace.incoming_bytes());
}

TEST(PageLoadTls, RecordPaddingHidesSizes) {
  workload::PageLoadOptions padded;
  padded.tls_records = true;
  padded.tls.pad_to = 4096;
  const auto& site = workload::nine_sites()[6];  // lean site: padding visible
  Rng r1(6), r2(6);
  workload::PageLoadOptions plain;
  const auto a = workload::run_page_load(site, r1, plain);
  const auto b = workload::run_page_load(site, r2, padded);
  ASSERT_TRUE(b.completed);
  // Padding adds volume.
  EXPECT_GT(b.trace.incoming_bytes(), a.trace.incoming_bytes());
}

// ------------------------------------------------------------------- CUMUL

wf::Dataset shaped_sites(int classes, int samples, std::uint64_t seed) {
  Rng rng(seed);
  wf::Dataset d;
  for (int c = 0; c < classes; ++c) {
    for (int s = 0; s < samples; ++s) {
      wf::Trace t;
      double time = 0;
      for (int b = 0; b < 4 + c; ++b) {
        t.add(time, +1, 600);
        time += rng.uniform(0.01, 0.02);
        for (int k = 0; k < 6 + 5 * c; ++k) {
          t.add(time, -1, 1000 + 100 * c);
          time += rng.uniform(0.001, 0.002);
        }
      }
      d.add(std::move(t), c);
    }
  }
  return d;
}

TEST(Cumul, FeatureCountAndShape) {
  wf::Trace t;
  t.add(0.0, +1, 500);
  t.add(0.1, -1, 1500);
  const auto f = wf::cumul_features(t, 50);
  ASSERT_EQ(f.size(), 54u);
  EXPECT_EQ(f[0], 1.0);     // incoming count
  EXPECT_EQ(f[1], 1.0);     // outgoing count
  EXPECT_EQ(f[2], 1500.0);  // incoming bytes
  EXPECT_EQ(f[3], 500.0);   // outgoing bytes
  EXPECT_DOUBLE_EQ(f[4], 0.0);                 // curve starts at 0
  EXPECT_DOUBLE_EQ(f.back(), 1500.0 - 500.0);  // and ends at the signed sum
}

TEST(Cumul, EmptyTraceSafe) {
  const auto f = wf::cumul_features(wf::Trace{}, 20);
  ASSERT_EQ(f.size(), 24u);
  for (double v : f) EXPECT_EQ(v, 0.0);
}

TEST(Cumul, CurveIsMonotoneForDownloadOnly) {
  wf::Trace t;
  for (int i = 0; i < 50; ++i) t.add(i * 0.01, -1, 1000);
  const auto f = wf::cumul_features(t, 30);
  for (std::size_t i = 5; i < f.size(); ++i) EXPECT_GE(f[i], f[i - 1]);
}

TEST(KnnClassifier, SeparatesBlobs) {
  Rng rng(3);
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  for (int i = 0; i < 60; ++i) {
    rows.push_back({rng.normal(0, 1), rng.normal(0, 1)});
    labels.push_back(0);
    rows.push_back({rng.normal(6, 1), rng.normal(6, 1)});
    labels.push_back(1);
  }
  wf::KnnClassifier knn(3);
  knn.fit(rows, labels);
  EXPECT_EQ(knn.predict(std::vector<double>{0.2, -0.3}), 0);
  EXPECT_EQ(knn.predict(std::vector<double>{5.8, 6.1}), 1);
}

TEST(KnnClassifier, StandardisationMattersForScale) {
  // One dimension is 1000x the other; without z-scoring it would dominate.
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    rows.push_back({rng.normal(0, 1), rng.normal(0, 1000)});
    labels.push_back(0);
    rows.push_back({rng.normal(4, 1), rng.normal(0, 1000)});
    labels.push_back(1);
  }
  wf::KnnClassifier knn(5);
  knn.fit(rows, labels);
  int correct = 0;
  for (int i = 0; i < 40; ++i) {
    correct += knn.predict(std::vector<double>{rng.normal(0, 1), rng.normal(0, 1000)}) == 0;
    correct += knn.predict(std::vector<double>{rng.normal(4, 1), rng.normal(0, 1000)}) == 1;
  }
  EXPECT_GT(correct, 64);  // >80% of 80
}

TEST(KnnClassifier, ErrorsOnMisuse) {
  wf::KnnClassifier knn;
  EXPECT_THROW(knn.predict(std::vector<double>{1.0}), std::logic_error);
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  EXPECT_THROW(knn.fit(rows, labels), std::invalid_argument);
}

TEST(CumulAttack, HighAccuracyOnSeparableSites) {
  const wf::Dataset data = shaped_sites(5, 16, 21);
  const wf::EvalResult res = wf::cumul_cross_validate(data, 3, 60, 4);
  EXPECT_GT(res.mean_accuracy, 0.9);
}

TEST(CumulAttack, DeterministicForSeed) {
  const wf::Dataset data = shaped_sites(3, 10, 23);
  const auto a = wf::cumul_cross_validate(data, 3, 60, 3, 42);
  const auto b = wf::cumul_cross_validate(data, 3, 60, 3, 42);
  EXPECT_EQ(a.mean_accuracy, b.mean_accuracy);
}

TEST(CumulAttack, AgreesWithKfpOnEasyData) {
  const wf::Dataset data = shaped_sites(4, 14, 25);
  wf::KFingerprint::Config kfp_cfg;
  kfp_cfg.forest.num_trees = 40;
  const double kfp = wf::cross_validate(data, kfp_cfg, 4).mean_accuracy;
  const double cumul = wf::cumul_cross_validate(data, 3, 80, 4).mean_accuracy;
  EXPECT_GT(kfp, 0.85);
  EXPECT_GT(cumul, 0.85);
}

}  // namespace
}  // namespace stob
