# Empty dependencies file for table1_defenses.
# This may be replaced when dependencies are built.
