#include "util/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace stob::csv {

namespace {

bool needs_quoting(std::string_view cell, char sep) {
  for (char c : cell) {
    if (c == sep || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

// Shared scanner: parses `content` into records, honouring quoted cells.
// `single_record` restricts the input to one logical line (split_line).
std::vector<Row> scan(std::string_view content, char sep, bool single_record) {
  std::vector<Row> rows;
  Row row;
  std::string cell;
  bool in_quotes = false;
  bool cell_started = false;  // distinguishes "" (one empty cell) from a blank line

  auto end_cell = [&] {
    row.push_back(std::move(cell));
    cell.clear();
    cell_started = false;
  };
  auto end_record = [&] {
    // A record with content always flushes its last cell; a completely blank
    // line produces no cells and is skipped (legacy read_file behaviour).
    if (cell_started || !cell.empty() || !row.empty()) end_cell();
    if (!row.empty()) rows.push_back(std::move(row));
    row.clear();
  };

  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < content.size() && content[i + 1] == '"') {
          cell += '"';  // doubled quote = literal quote
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell += c;  // separators and newlines are literal inside quotes
      }
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      cell_started = true;
    } else if (c == sep) {
      cell_started = true;  // "a," ends with an (empty) second cell
      end_cell();
    } else if (c == '\r' && !single_record && i + 1 < content.size() &&
               content[i + 1] == '\n') {
      // CRLF line ending: the CR belongs to the terminator, not the cell
      // (so a "\r\n" blank line stays blank); consumed with the LF below.
    } else if (c == '\n' && !single_record) {
      end_record();
    } else {
      cell += c;
      cell_started = true;
    }
  }
  if (in_quotes) throw std::runtime_error("csv: unterminated quoted cell");
  end_record();
  return rows;
}

}  // namespace

std::string quote_cell(std::string_view cell, char sep) {
  if (!needs_quoting(cell, sep)) return std::string(cell);
  std::string out;
  out.reserve(cell.size() + 2);
  out += '"';
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

Row split_line(std::string_view line, char sep) {
  const std::vector<Row> rows = scan(line, sep, /*single_record=*/true);
  return rows.empty() ? Row{""} : rows.front();  // "" splits to one empty cell
}

std::vector<Row> parse_content(std::string_view content, char sep) {
  return scan(content, sep, /*single_record=*/false);
}

std::vector<Row> read_file(const std::filesystem::path& path, char sep) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("csv: cannot open " + path.string());
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_content(buf.str(), sep);
}

void write_file(const std::filesystem::path& path, const std::vector<Row>& rows, char sep) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  if (!out) throw std::runtime_error("csv: cannot open for write " + path.string());
  for (const Row& row : rows) out << join(row, sep) << '\n';
  if (!out) throw std::runtime_error("csv: write failed for " + path.string());
}

std::string join(const Row& row, char sep) {
  std::ostringstream os;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i) os << sep;
    os << quote_cell(row[i], sep);
  }
  return os.str();
}

}  // namespace stob::csv
