// Queueing disciplines at the bottom of the host stack.
//
// The qdisc sits between the transport and the NIC. It is one of the places
// the paper identifies where application-level timing intent is destroyed:
// packets can be held for fairness between flows or for pacing, and they are
// dequeued asynchronously from the application's send() calls.
//
// Two disciplines are provided:
//  * FifoQdisc  - pfifo-like, ignores pacing timestamps.
//  * FqQdisc    - Linux fq-like: per-flow FIFO queues, deficit round robin
//                 between flows, and per-packet earliest-departure-time
//                 (EDT) pacing honoured per flow.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <unordered_map>

#include "net/packet.hpp"
#include "util/ring_deque.hpp"
#include "util/units.hpp"

namespace stob::stack {

class Qdisc {
 public:
  virtual ~Qdisc() = default;

  /// Add a packet. May drop (counted) if an internal limit is exceeded.
  virtual void enqueue(net::Packet p) = 0;

  /// Remove and return the next packet eligible at `now`, or nullopt if none
  /// is eligible yet (queue empty or all packets paced into the future).
  virtual std::optional<net::Packet> dequeue(TimePoint now) = 0;

  /// Earliest time at which dequeue() could return a packet, or
  /// TimePoint::max() when empty. Used by the NIC to arm a wakeup timer.
  virtual TimePoint next_ready(TimePoint now) const = 0;

  virtual bool empty() const = 0;
  virtual Bytes backlog() const = 0;
  virtual std::uint64_t dropped() const = 0;

  /// Bytes currently queued for one flow (TCP small queues accounting).
  virtual Bytes flow_backlog(const net::FlowKey& flow) const = 0;
};

/// Simple FIFO (pfifo_fast without priorities). EDT timestamps are ignored,
/// which is exactly why pacing-dependent defenses need fq.
class FifoQdisc final : public Qdisc {
 public:
  explicit FifoQdisc(Bytes capacity = Bytes::mebi(64)) : capacity_(capacity) {}

  void enqueue(net::Packet p) override;
  std::optional<net::Packet> dequeue(TimePoint now) override;
  TimePoint next_ready(TimePoint now) const override;
  bool empty() const override { return queue_.empty(); }
  Bytes backlog() const override { return backlog_; }
  std::uint64_t dropped() const override { return dropped_; }
  Bytes flow_backlog(const net::FlowKey& flow) const override;

 private:
  Bytes capacity_;
  Bytes backlog_;
  std::uint64_t dropped_ = 0;
  util::RingDeque<net::Packet> queue_;
  std::unordered_map<net::FlowKey, std::int64_t, net::FlowKeyHash> per_flow_bytes_;
};

/// fq-like fair queueing with EDT pacing.
///
/// Each flow gets a FIFO. Flows with an eligible head packet (not_before <=
/// now) are served in deficit-round-robin order with a byte quantum. Packets
/// within a flow are never reordered, and a flow whose head is paced into
/// the future does not block other flows (work conservation across flows).
class FqQdisc final : public Qdisc {
 public:
  struct Config {
    /// Total backlog cap. Deliberately generous: the transport's own TCP
    /// small queues bound what sits here, and a local drop would look like
    /// network loss to the sender (real qdiscs backpressure TCP instead).
    Bytes capacity = Bytes::mebi(64);
    Bytes quantum = Bytes(2 * 1514);     // DRR quantum (two full frames)
    /// Maximum allowed EDT horizon; packets scheduled further out are
    /// clamped (mirrors fq's horizon behaviour).
    Duration horizon = Duration::seconds(10);
  };

  FqQdisc();  // default Config
  explicit FqQdisc(Config cfg) : cfg_(cfg) {}

  void enqueue(net::Packet p) override;
  std::optional<net::Packet> dequeue(TimePoint now) override;
  TimePoint next_ready(TimePoint now) const override;
  bool empty() const override { return backlog_.count() == 0; }
  Bytes backlog() const override { return backlog_; }
  std::uint64_t dropped() const override { return dropped_; }
  Bytes flow_backlog(const net::FlowKey& flow) const override;

  std::size_t active_flows() const { return flows_.size(); }

 private:
  struct FlowQueue {
    util::RingDeque<net::Packet> packets;
    std::int64_t bytes = 0;
    std::int64_t deficit = 0;
    bool in_round = false;  // linked into the active round-robin list
  };

  using FlowMap = std::unordered_map<net::FlowKey, FlowQueue, net::FlowKeyHash>;

  Config cfg_;
  Bytes backlog_;
  std::uint64_t dropped_ = 0;
  FlowMap flows_;
  std::list<net::FlowKey> round_;  // active flows, DRR order
};

}  // namespace stob::stack
