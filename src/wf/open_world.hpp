// Open-world website-fingerprinting evaluation.
//
// The closed world of Table 2 (the censor knows the client visits one of 9
// sites) is the attacker's best case; the paper notes WF studies are often
// criticised for it (§2.2). This module implements the open-world protocol
// of k-FP (Hayes & Danezis): a set of *monitored* sites plus a large
// *background* of unmonitored traffic; the classifier must name the
// monitored site AND abstain on background traffic. Following k-FP, a test
// trace is assigned a monitored label only if all k nearest training
// fingerprints (random-forest leaf vectors) agree on it; otherwise it is
// classified as unmonitored.
//
// Metrics: TPR (monitored traces flagged as monitored — any monitored
// label), FPR (background traces falsely flagged), and closed-set accuracy
// among true positives.
#pragma once

#include <cstdint>

#include "wf/random_forest.hpp"
#include "wf/trace.hpp"

namespace stob::wf {

struct OpenWorldResult {
  double tpr = 0.0;                ///< monitored detected as monitored
  double fpr = 0.0;                ///< background flagged as monitored
  double precision = 0.0;          ///< flagged-and-actually-monitored / flagged
  double monitored_accuracy = 0.0; ///< correct site among true positives
  std::size_t monitored_tested = 0;
  std::size_t background_tested = 0;
};

struct OpenWorldConfig {
  RandomForest::Config forest;
  std::size_t k_neighbors = 3;   ///< unanimity over this many neighbours
  double train_fraction = 0.6;   ///< per-class split for monitored & background
  std::uint64_t seed = 0x0B5Eull;
};

/// Evaluate the open-world attack. `monitored` carries labels 0..M-1;
/// every trace of `background` is treated as the unmonitored world (its
/// labels are ignored). Deterministic for a given config seed.
OpenWorldResult open_world_evaluate(const Dataset& monitored, const Dataset& background,
                                    const OpenWorldConfig& cfg);

class FeatureStore;

struct OpenWorldStreamConfig {
  RandomForest::Config forest;
  std::size_t k_neighbors = 3;  ///< unanimity over this many neighbours
  double train_fraction = 0.6;  ///< per-class split of the monitored store
  /// Background fingerprints folded into the training set, drawn by a
  /// deterministic stride over the store (row r trains iff r % step == 0,
  /// step = rows / bg_train_count) — O(bg_train_count) memory, no O(corpus)
  /// shuffle. Everything else in the background store is test traffic.
  std::size_t bg_train_count = 1000;
  std::size_t block_rows = 8192;  ///< background rows streamed per block
  std::size_t jobs = 1;           ///< worker threads (never changes results)
  std::uint64_t seed = 0x0B5Eull;
};

/// Open-world evaluation over mmap'd feature stores: the monitored store
/// (labels 0..M-1) is materialised for training/testing, the background
/// store is streamed block-wise with pages dropped behind the pass, so
/// peak memory is O(train set + one block) — constant in corpus size.
/// Per-block counters are reduced in block order via exp::run_ordered, so
/// results are identical for every `jobs` value.
OpenWorldResult open_world_stream(const FeatureStore& monitored, const FeatureStore& background,
                                  const OpenWorldStreamConfig& cfg);

}  // namespace stob::wf
