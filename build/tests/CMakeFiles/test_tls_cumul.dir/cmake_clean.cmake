file(REMOVE_RECURSE
  "CMakeFiles/test_tls_cumul.dir/test_tls_cumul.cpp.o"
  "CMakeFiles/test_tls_cumul.dir/test_tls_cumul.cpp.o.d"
  "test_tls_cumul"
  "test_tls_cumul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tls_cumul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
