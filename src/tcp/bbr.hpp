// BBR-style congestion control (v1 semantics, simplified).
//
// Model-based: estimates the bottleneck bandwidth (windowed max of delivery
// rate samples) and the minimum RTT (windowed min), paces at gain * btlbw
// and caps inflight at cwnd_gain * BDP. The pacing schedule is load-bearing
// for BBR, which is why the paper singles it out as the CCA whose estimation
// Stob's departure-time control could confuse (§5.1).
#pragma once

#include <deque>

#include "tcp/congestion.hpp"

namespace stob::tcp {

class BbrCc final : public CongestionControl {
 public:
  explicit BbrCc(Bytes mss, Bytes initial_window = Bytes(0));

  void on_ack(const AckEvent& ev) override;
  void on_loss(TimePoint now) override;
  void on_rto(TimePoint now) override;
  Bytes cwnd() const override;
  DataRate pacing_rate() const override;
  bool in_slow_start() const override { return mode_ == Mode::Startup; }
  std::string name() const override { return "bbr"; }

  DataRate btlbw() const;
  Duration min_rtt() const { return min_rtt_; }

  enum class Mode { Startup, Drain, ProbeBw, ProbeRtt };
  Mode mode() const { return mode_; }

 private:
  Bytes bdp(double gain) const;
  void update_btlbw(const AckEvent& ev);
  void update_min_rtt(const AckEvent& ev);
  void advance_mode(const AckEvent& ev);

  std::int64_t mss_;
  std::int64_t initial_cwnd_;

  Mode mode_ = Mode::Startup;
  std::deque<std::pair<TimePoint, std::int64_t>> bw_samples_;  // (time, bps)
  Duration min_rtt_ = Duration::seconds(10);
  TimePoint min_rtt_stamp_ = TimePoint::zero();
  Duration srtt_;

  // Startup full-pipe detection.
  std::int64_t full_bw_ = 0;
  int full_bw_count_ = 0;
  TimePoint round_start_ = TimePoint::zero();

  // ProbeBW gain cycling.
  int cycle_index_ = 0;
  TimePoint cycle_stamp_ = TimePoint::zero();

  // ProbeRTT.
  TimePoint probe_rtt_done_ = TimePoint::zero();

  Bytes last_inflight_;
};

}  // namespace stob::tcp
