// Deterministic synthetic trace generator for corpus-scale experiments.
//
// Million-trace open-world evaluation needs labeled traffic far beyond what
// the simulator collects in reasonable time, so bench/openworld_scale
// generates traces directly: each monitored "site" gets a stable burst
// profile derived from its id, and every background page gets its own
// random profile derived from its index. Each trace is a pure function of
// (seed, identity) — generation order and parallelism cannot change a
// single byte of a generated corpus, which is what lets the scalar and
// SIMD CI legs diff whole store files.
#pragma once

#include <cstdint>

#include "wf/trace.hpp"

namespace stob::wf {

/// Instance `instance` of monitored site `site`: the site's burst profile
/// plus per-instance noise.
Trace synth_site_trace(std::uint64_t seed, int site, std::uint64_t instance);

/// Background page `index`: a one-off profile per index (the open world is
/// heavy-tailed — every unmonitored page looks different).
Trace synth_background_trace(std::uint64_t seed, std::uint64_t index);

}  // namespace stob::wf
