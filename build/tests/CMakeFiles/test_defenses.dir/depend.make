# Empty dependencies file for test_defenses.
# This may be replaced when dependencies are built.
