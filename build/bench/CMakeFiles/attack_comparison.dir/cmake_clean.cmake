file(REMOVE_RECURSE
  "CMakeFiles/attack_comparison.dir/attack_comparison.cpp.o"
  "CMakeFiles/attack_comparison.dir/attack_comparison.cpp.o.d"
  "attack_comparison"
  "attack_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
