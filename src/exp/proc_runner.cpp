#include "exp/proc_runner.hpp"

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "util/log.hpp"
#include "util/subprocess.hpp"

namespace stob::exp {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

constexpr std::size_t kStderrTailBytes = 4096;

}  // namespace

// ------------------------------------------------------- WorkerFaultPlan

WorkerFaultPlan WorkerFaultPlan::parse(const std::string& spec) {
  WorkerFaultPlan plan;
  if (spec.empty()) return plan;
  std::string kind = spec;
  std::string rate_str;
  if (const auto colon = spec.find(':'); colon != std::string::npos) {
    kind = spec.substr(0, colon);
    rate_str = spec.substr(colon + 1);
  }
  if (kind == "crash") {
    plan.kind = Kind::Crash;
  } else if (kind == "hang") {
    plan.kind = Kind::Hang;
  } else if (kind == "exit") {
    plan.kind = Kind::Exit;
  } else {
    throw std::invalid_argument("exp: bad worker fault '" + spec +
                                "' (expected crash|hang|exit[:rate])");
  }
  plan.rate = 1.0;
  if (!rate_str.empty()) {
    try {
      std::size_t used = 0;
      plan.rate = std::stod(rate_str, &used);
      if (used != rate_str.size()) throw std::invalid_argument("trailing junk");
    } catch (const std::exception&) {
      throw std::invalid_argument("exp: bad worker fault rate in '" + spec + "'");
    }
    if (plan.rate < 0.0 || plan.rate > 1.0) {
      throw std::invalid_argument("exp: worker fault rate must be in [0, 1], got '" + spec +
                                  "'");
    }
  }
  return plan;
}

bool WorkerFaultPlan::should_inject(std::size_t job, std::size_t attempt,
                                    std::size_t max_attempts) const {
  if (!enabled()) return false;
  if (rate >= 1.0) return true;  // "always": quarantine-path testing
  // A cell's final attempt is exempt so a faulted sweep always converges to
  // the fault-free output — the byte-identity CI gate depends on this.
  if (attempt + 1 >= max_attempts) return false;
  const std::uint64_t coin = mix64(mix64(0xFA417ull ^ job) ^ attempt);
  return static_cast<double>(coin >> 11) * 0x1.0p-53 < rate;
}

const char* WorkerFaultPlan::kind_name() const {
  switch (kind) {
    case Kind::Crash: return "crash";
    case Kind::Hang: return "hang";
    case Kind::Exit: return "exit";
    case Kind::None: break;
  }
  return "";
}

// --------------------------------------------------------- fault execution

void execute_worker_fault(std::string_view kind) {
  if (kind == "crash") {
    // SIGKILL rather than SIGSEGV: it cannot be intercepted, so the hook
    // reports as a signal death identically under ASan/TSan builds (whose
    // handlers turn a raised SIGSEGV into a clean nonzero exit).
    ::raise(SIGKILL);
    ::_exit(99);  // unreachable
  }
  if (kind == "hang") {
    for (;;) ::pause();  // wedge until the watchdog SIGKILLs us
  }
  if (kind == "exit") ::_exit(3);
}

// --------------------------------------------------------------- supervisor

namespace {

struct Attempt {
  std::size_t job = 0;
  std::size_t attempt = 0;  // 0-based
};

struct Delayed {
  Clock::time_point ready;
  Attempt item;
};

struct Active {
  util::Subprocess proc;
  Attempt item;
  Clock::time_point deadline;
  std::string result_buf;
  std::string err_tail;
  bool result_eof = false;
  bool err_eof = false;

  bool drained() const { return result_eof && err_eof; }
};

/// Drain whatever is readable from `fd` into `buf`; returns true on EOF.
bool drain_fd(int fd, std::string* buf) {
  char tmp[4096];
  for (;;) {
    const ssize_t n = util::read_some(fd, tmp, sizeof(tmp));
    if (n == 0) return true;
    if (n < 0) return false;  // EAGAIN: no more for now
    buf->append(tmp, static_cast<std::size_t>(n));
  }
}

void trim_tail(std::string* s) {
  if (s->size() > kStderrTailBytes) s->erase(0, s->size() - kStderrTailBytes);
}

struct Outcome {
  bool success = false;
  std::string payload;
  std::string kind;  // "signal" / "exit" / "timeout" / "frame"
  int signal_no = 0;
  int exit_code = 0;
};

Outcome classify(Active& a, bool timed_out) {
  Outcome out;
  if (timed_out) {
    out.kind = "timeout";
    out.signal_no = SIGKILL;
    return out;
  }
  const util::ExitStatus st = a.proc.wait();
  if (st.signaled) {
    out.kind = "signal";
    out.signal_no = st.term_signal;
    return out;
  }
  if (!st.clean()) {
    out.kind = "exit";
    out.exit_code = st.exit_code;
    return out;
  }
  std::optional<std::string> payload = util::parse_frame(a.result_buf);
  if (!payload.has_value()) {
    out.kind = "frame";  // exited 0 but the result frame is missing/torn
    return out;
  }
  out.success = true;
  out.payload = std::move(*payload);
  return out;
}

}  // namespace

std::vector<std::optional<std::string>> run_cells(
    std::size_t count, const ProcOptions& opts,
    const std::function<std::string(std::size_t)>& digest,
    const std::function<std::string(std::size_t)>& run_cell, ProcReport* report,
    const CellCache* cache) {
  if (opts.workers == 0) throw std::runtime_error("proc: run_cells needs workers > 0");
  if (opts.resume && opts.journal_path.empty()) {
    throw std::runtime_error("proc: --resume needs a --journal path");
  }
  const WorkerFaultPlan fault = WorkerFaultPlan::parse(opts.fault_spec);
  const std::size_t max_attempts = opts.retries + 1;
  const bool exec_mode = !opts.worker_argv.empty();

  ProcReport local;
  ProcReport& rep = report != nullptr ? *report : local;
  rep = ProcReport{};
  rep.cells = count;

  std::vector<std::optional<std::string>> payloads(count);
  std::vector<std::string> digests(count);
  for (std::size_t i = 0; i < count; ++i) digests[i] = digest(i);

  std::deque<Attempt> pending;
  if (opts.resume) {
    const obs::Journal::Loaded loaded = obs::Journal::load(opts.journal_path);
    std::unordered_map<std::string, const std::string*> by_digest;
    for (const obs::JournalCell& cell : loaded.cells) {
      by_digest[cell.digest] = &cell.payload;  // last record per digest wins
    }
    for (std::size_t i = 0; i < count; ++i) {
      if (const auto it = by_digest.find(digests[i]); it != by_digest.end()) {
        payloads[i] = *it->second;
        rep.journal_hits += 1;
      } else {
        pending.push_back({i, 0});
      }
    }
    if (loaded.malformed_lines > 0) {
      STOB_WARN("proc") << "journal " << opts.journal_path << ": skipped "
                        << loaded.malformed_lines << " torn/malformed line(s)";
    }
  } else {
    for (std::size_t i = 0; i < count; ++i) pending.push_back({i, 0});
  }

  // Resolution order: journal (this sweep's own finished cells) first, then
  // the cross-run cache, then a worker. Cache hits are journaled like any
  // finished cell so a later --resume works even against a gc'd cache.
  obs::Journal journal;
  if (!opts.journal_path.empty()) journal = obs::Journal(opts.journal_path);

  if (cache != nullptr && cache->probe) {
    std::deque<Attempt> still_pending;
    for (const Attempt& item : pending) {
      if (std::optional<std::string> hit = cache->probe(item.job)) {
        if (journal.is_open()) {
          journal.append(obs::JournalCell{digests[item.job], item.job, 1, *hit});
        }
        payloads[item.job] = std::move(*hit);
        rep.cache_hits += 1;
      } else {
        still_pending.push_back(item);
      }
    }
    pending.swap(still_pending);
  }

  // Resolve the worker binary once: argv[0] may be relative to a cwd that
  // could change, and /proc/self/exe survives deletion/rename of the path.
  std::vector<std::string> base_argv = opts.worker_argv;
  if (exec_mode) base_argv[0] = util::self_exe_path(base_argv[0]);

  std::vector<Active> active;
  std::vector<Delayed> delayed;
  active.reserve(opts.workers);

  const auto spawn = [&](const Attempt& item) {
    const bool inject = fault.should_inject(item.job, item.attempt, max_attempts);
    if (inject) rep.injected_faults += 1;

    util::Subprocess::Options sub;
    sub.result_fd = opts.worker_fd >= 0 ? opts.worker_fd : 3;
    if (exec_mode) {
      sub.argv = base_argv;
      sub.argv.push_back("--worker-job");
      sub.argv.push_back(std::to_string(item.job));
      sub.argv.push_back("--worker-fd");
      sub.argv.push_back(std::to_string(sub.result_fd));
      if (inject) {
        sub.argv.push_back("--worker-fault");
        sub.argv.push_back(fault.kind_name());
      }
      if (opts.worker_profile) {
        sub.argv.push_back("--worker-prof-domain");
        sub.argv.push_back(std::to_string(opts.worker_prof_domain));
      }
    } else {
      const std::size_t job = item.job;
      const std::string fault_kind = inject ? fault.kind_name() : "";
      sub.child_fn = [job, fault_kind, &run_cell](int result_fd) {
        execute_worker_fault(fault_kind);
        const std::string payload = run_cell(job);
        return util::write_frame(result_fd, payload) ? 0 : 1;
      };
    }

    Active a;
    a.proc = util::Subprocess::spawn(sub);
    a.item = item;
    a.deadline = Clock::now() + std::chrono::nanoseconds(opts.job_timeout.ns());
    active.push_back(std::move(a));
  };

  const auto backoff = [&](std::size_t attempt) {
    Duration d = opts.backoff_base;
    for (std::size_t k = 0; k < attempt && d < opts.backoff_cap; ++k) d = d * 2;
    return std::min(d, opts.backoff_cap);
  };

  const auto finalize = [&](Active& a, bool timed_out) {
    Outcome out = classify(a, timed_out);
    const std::size_t job = a.item.job;
    const std::size_t attempts = a.item.attempt + 1;
    if (out.success) {
      if (journal.is_open()) {
        journal.append(obs::JournalCell{digests[job], job,
                                        static_cast<std::uint32_t>(attempts), out.payload});
      }
      if (cache != nullptr && cache->commit) {
        cache->commit(job, out.payload);
        rep.cache_stores += 1;
      }
      payloads[job] = std::move(out.payload);
      rep.ran += 1;
      return;
    }
    if (attempts < max_attempts) {
      rep.retries += 1;
      delayed.push_back({Clock::now() + std::chrono::nanoseconds(backoff(a.item.attempt).ns()),
                         {job, a.item.attempt + 1}});
      return;
    }
    trim_tail(&a.err_tail);
    obs::CrashRecord crash;
    crash.job = job;
    crash.digest = digests[job];
    crash.attempts = static_cast<std::uint32_t>(attempts);
    crash.outcome = out.kind;
    crash.signal_no = out.signal_no;
    crash.exit_code = out.exit_code;
    crash.stderr_tail = a.err_tail;
    if (journal.is_open()) journal.append(crash);
    rep.failures.push_back(std::move(crash));
    rep.quarantined += 1;
  };

  while (!pending.empty() || !delayed.empty() || !active.empty()) {
    const Clock::time_point now = Clock::now();

    // Promote retry attempts whose backoff has elapsed.
    for (std::size_t i = 0; i < delayed.size();) {
      if (delayed[i].ready <= now) {
        pending.push_back(delayed[i].item);
        delayed.erase(delayed.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    while (active.size() < opts.workers && !pending.empty()) {
      spawn(pending.front());
      pending.pop_front();
    }
    if (active.empty()) {
      if (delayed.empty()) break;  // pending handled above; nothing left
      Clock::time_point earliest = delayed.front().ready;
      for (const Delayed& d : delayed) earliest = std::min(earliest, d.ready);
      const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(earliest - now);
      ::poll(nullptr, 0, static_cast<int>(std::max<std::int64_t>(1, ms.count() + 1)));
      continue;
    }

    // Poll every live descriptor, bounded by the nearest watchdog deadline
    // (or retry-ready time), so hangs are detected without busy-waiting.
    Clock::time_point wake = active.front().deadline;
    for (const Active& a : active) wake = std::min(wake, a.deadline);
    for (const Delayed& d : delayed) wake = std::min(wake, d.ready);
    for (const Active& a : active) {
      // Both pipes at EOF means the worker is mid-exit: its zombie may not
      // be waitable for another scheduler tick (the parent can win the
      // waitpid race outright on a single-core machine), and a dead child
      // contributes no descriptors to wake poll. Re-check shortly instead
      // of sleeping to the watchdog deadline.
      if (a.drained()) {
        wake = std::min(wake, now + std::chrono::milliseconds(2));
        break;
      }
    }
    std::vector<pollfd> fds;
    std::vector<std::pair<std::size_t, bool>> owner;  // (active idx, is_result)
    for (std::size_t i = 0; i < active.size(); ++i) {
      if (!active[i].result_eof && active[i].proc.result_fd() >= 0) {
        fds.push_back({active[i].proc.result_fd(), POLLIN, 0});
        owner.emplace_back(i, true);
      }
      if (!active[i].err_eof && active[i].proc.stderr_fd() >= 0) {
        fds.push_back({active[i].proc.stderr_fd(), POLLIN, 0});
        owner.emplace_back(i, false);
      }
    }
    const auto timeout_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
        wake - Clock::now());
    const int timeout =
        static_cast<int>(std::clamp<std::int64_t>(timeout_ms.count() + 1, 0, 60'000));
    int rc;
    do {
      rc = ::poll(fds.data(), fds.size(), timeout);
    } while (rc < 0 && errno == EINTR);

    for (std::size_t k = 0; k < fds.size(); ++k) {
      if (fds[k].revents == 0) continue;
      Active& a = active[owner[k].first];
      if (owner[k].second) {
        a.result_eof = drain_fd(fds[k].fd, &a.result_buf);
      } else {
        a.err_eof = drain_fd(fds[k].fd, &a.err_tail);
        trim_tail(&a.err_tail);
      }
    }

    // Reap finished and expired workers. Iterate by index and compact at
    // the end so finalize() (which can push retries) never invalidates the
    // loop.
    const Clock::time_point after = Clock::now();
    for (std::size_t i = 0; i < active.size();) {
      Active& a = active[i];
      bool done = false;
      if (a.drained()) {
        if (a.proc.try_wait().has_value()) {
          finalize(a, /*timed_out=*/false);
          done = true;
        }
      }
      if (!done && after >= a.deadline) {
        a.proc.kill(SIGKILL);
        a.proc.wait();
        // The kill closed the child's pipe ends; collect any last bytes.
        if (!a.result_eof && a.proc.result_fd() >= 0) drain_fd(a.proc.result_fd(), &a.result_buf);
        if (!a.err_eof && a.proc.stderr_fd() >= 0) {
          drain_fd(a.proc.stderr_fd(), &a.err_tail);
          trim_tail(&a.err_tail);
        }
        finalize(a, /*timed_out=*/true);
        done = true;
      }
      if (done) {
        active.erase(active.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }

  return payloads;
}

void print_proc_summary(const char* tool, const ProcOptions& opts, const ProcReport& report) {
  std::fprintf(stderr,
               "%s: proc supervisor: %zu cells, %zu ran, %zu journal hits, %zu cache hits, "
               "%zu cache stores, %zu retries, %zu injected faults, %zu quarantined\n",
               tool, report.cells, report.ran, report.journal_hits, report.cache_hits,
               report.cache_stores, report.retries, report.injected_faults, report.quarantined);
  for (const obs::CrashRecord& f : report.failures) {
    std::fprintf(stderr,
                 "%s: quarantined cell %llu (digest %.12s…) after %u attempts: %s "
                 "(signal=%d exit=%d)\n",
                 tool, static_cast<unsigned long long>(f.job), f.digest.c_str(), f.attempts,
                 f.outcome.c_str(), f.signal_no, f.exit_code);
  }
  if (!opts.journal_path.empty()) {
    std::fprintf(stderr, "%s: journal: %s\n", tool, opts.journal_path.c_str());
  }
}

}  // namespace stob::exp
