// Modular defense-policy interface: packet events in, schedule/pad/delay
// decisions out.
//
// A defenses::Policy is a streaming state machine over one flow's packet
// sequence — the WFDefProxy shape. The driver (trace replay today, the
// ROADMAP item-1 live proxy tomorrow) feeds it one PacketEvent per observed
// packet in time order; the policy emits zero or more PacketOut decisions
// per event: forward the packet (possibly later / resized), inject dummy
// padding, or hold data for a scheduled departure. Because the interface
// speaks packet events rather than whole traces, the same policy object can
// be
//   * replayed over a recorded wf::Trace (run_policy), which is how the
//     experiment grid's defense axis evaluates it,
//   * mounted at the in-stack TCP segment hook via defenses::SegmentMount
//     (stack_mount.hpp), where its delay/size decisions are enforced by the
//     transport and clamped by core::CcaGuard,
//   * driven by a live packet loop (future work; this seam is what the
//     standalone tunnel proxy reuses).
//
// Determinism contract: all randomness flows through the Rng handed to
// begin() — the experiment engine passes the job-seeded generator, so a
// policy's output is a pure function of (job seed, input events). Policies
// that need stream-order-independent draws fork the generator in begin();
// the migrated split/delay baselines deliberately draw from the job Rng in
// event order so their output is byte-identical to the pre-interface trace
// transforms (the migration gate tests/test_policy_parity.cpp pins).
//
// Obs taps are untouched by construction: trace replay happens after the
// simulated stack ran (recorder/metrics sinks already captured the load),
// and the stack mount sits behind the existing core::Policy hook, below
// which every obs tap (TLS/TCP/qdisc/NIC/wire) keeps firing.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "defenses/trace_defense.hpp"
#include "util/rng.hpp"
#include "wf/trace.hpp"

namespace stob::defenses {

/// One packet event entering a policy, in trace coordinates (seconds since
/// the first packet; +1 = client->server, -1 = server->client).
struct PacketEvent {
  double time = 0.0;
  int direction = 0;
  std::int64_t size = 0;
};

/// One packet the policy decided to put on the wire.
struct PacketOut {
  double time = 0.0;
  int direction = 0;
  std::int64_t size = 0;
  bool dummy = false;  ///< padding packet carrying no payload

  friend bool operator==(const PacketOut&, const PacketOut&) = default;
};

/// Streaming defense policy. Stateful; one instance drives one flow/trace.
class Policy {
 public:
  virtual ~Policy() = default;

  virtual std::string name() const = 0;

  /// Called once before the first event. `rng` is the job-seeded generator
  /// (the experiment engine forks one per job); it outlives the stream, so
  /// policies may keep the reference and draw lazily, or fork it for
  /// stream-order-independent randomness.
  virtual void begin(Rng& rng) = 0;

  /// One packet observed; append any output packets to `out`.
  virtual void on_packet(const PacketEvent& ev, std::vector<PacketOut>& out) = 0;

  /// End of input (`end_time` = last input packet's timestamp). Emit any
  /// queued payload and trailing schedule; policies must never strand real
  /// payload here.
  virtual void finish(double end_time, std::vector<PacketOut>& out);
};

/// Replay a recorded trace through a policy: events in capture order,
/// emissions collected, normalized into a fresh trace. This is the driver
/// the TraceDefense adapter and the parity gate use.
wf::Trace run_policy(Policy& policy, const wf::Trace& in, Rng& rng);

/// Chain of policies: stage k+1 consumes the normalized output of stage k
/// (exactly how CombinedDefense = delay(split(trace)) composes). Buffers the
/// stream and materializes between stages, so timestamp reordering from an
/// earlier stage is resolved before the next stage sees the packets.
class ChainPolicy final : public Policy {
 public:
  explicit ChainPolicy(std::vector<std::unique_ptr<Policy>> stages)
      : stages_(std::move(stages)) {}

  std::string name() const override;
  void begin(Rng& rng) override;
  void on_packet(const PacketEvent& ev, std::vector<PacketOut>& out) override;
  void finish(double end_time, std::vector<PacketOut>& out) override;

 private:
  std::vector<std::unique_ptr<Policy>> stages_;
  std::vector<PacketEvent> buffer_;
  Rng* rng_ = nullptr;
};

/// Adapter: a Policy factory as a TraceDefense, so policy-backed defenses
/// ride the existing experiment-grid defense axis, zoo benches and overhead
/// accounting unchanged. apply() builds a fresh policy per call — the grid
/// shares one TraceDefense across worker threads, and policies are stateful.
class PolicyDefense final : public TraceDefense {
 public:
  using Factory = std::function<std::unique_ptr<Policy>()>;

  struct Meta {
    std::string target = "Stob";
    std::string strategy = "Obfuscation";
    Manipulations manipulations;
  };

  PolicyDefense(std::string name, Meta meta, Factory factory)
      : name_(std::move(name)), meta_(std::move(meta)), factory_(std::move(factory)) {}

  wf::Trace apply(const wf::Trace& trace, Rng& rng) const override;
  std::string name() const override { return name_; }
  std::string target() const override { return meta_.target; }
  std::string strategy() const override { return meta_.strategy; }
  Manipulations manipulations() const override { return meta_.manipulations; }

  /// Build a fresh streaming instance (for stack mounting or custom drivers).
  std::unique_ptr<Policy> make() const { return factory_(); }

 private:
  std::string name_;
  Meta meta_;
  Factory factory_;
};

// ------------------------------------------------------------- registry

/// Named entry of the policy zoo.
struct PolicyInfo {
  std::string name;
  PolicyDefense::Meta meta;
  PolicyDefense::Factory factory;
};

/// All registered streaming policies: the migrated §3 baselines (split,
/// delay, combined) plus the in-stack ports of RegulaTor and full
/// adaptive-padding WTF-PAD.
const std::vector<PolicyInfo>& policy_zoo();

/// Fresh streaming policy by name; throws std::invalid_argument on unknown
/// names (listing the known ones).
std::unique_ptr<Policy> make_policy(std::string_view name);

/// Policy wrapped as a TraceDefense (same lookup rules as make_policy).
std::unique_ptr<TraceDefense> make_policy_defense(std::string_view name);

}  // namespace stob::defenses
