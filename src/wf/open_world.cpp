#include "wf/open_world.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "exp/worker_pool.hpp"
#include "util/rng.hpp"
#include "wf/corpus.hpp"
#include "wf/feature_matrix.hpp"
#include "wf/features.hpp"
#include "wf/leaf_knn.hpp"

namespace stob::wf {

namespace {

/// Split indices of one class into train/test deterministically.
void split_indices(std::size_t count, double train_fraction, Rng& rng,
                   std::vector<std::size_t>& order, std::size_t& train_count) {
  order.resize(count);
  for (std::size_t i = 0; i < count; ++i) order[i] = i;
  std::shuffle(order.begin(), order.end(), rng);
  train_count = std::max<std::size_t>(1, static_cast<std::size_t>(
                                             train_fraction * static_cast<double>(count)));
}

/// k-FP rule: monitored verdict only on unanimous k nearest fingerprints.
/// `scored` is caller scratch (reused across queries).
int knn_verdict(std::span<const int> counts, std::span<const int> train_labels,
                std::size_t k_neighbors, int background_label,
                std::vector<std::pair<int, int>>& scored) {
  const std::size_t n_train = train_labels.size();
  scored.clear();
  scored.reserve(n_train);
  for (std::size_t i = 0; i < n_train; ++i) scored.emplace_back(counts[i], train_labels[i]);
  const std::size_t k = std::min(k_neighbors, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + static_cast<std::ptrdiff_t>(k),
                    scored.end(),
                    [](const auto& a, const auto& b) { return a.first > b.first; });
  const int first = scored[0].second;
  if (first == background_label) return background_label;
  for (std::size_t i = 1; i < k; ++i) {
    if (scored[i].second != first) return background_label;  // not unanimous
  }
  return first;
}

}  // namespace

OpenWorldResult open_world_evaluate(const Dataset& monitored, const Dataset& background,
                                    const OpenWorldConfig& cfg) {
  if (monitored.size() == 0 || background.size() == 0) {
    throw std::invalid_argument("open_world_evaluate: need monitored and background data");
  }
  const int num_monitored_classes =
      *std::max_element(monitored.labels().begin(), monitored.labels().end()) + 1;
  const int background_label = num_monitored_classes;  // one extra class

  Rng rng(cfg.seed);

  // Per-class stratified split of the monitored set. Only the split
  // consumes the RNG; feature extraction is deferred to one batched pass.
  std::vector<std::size_t> train_traces;  // monitored first, then background
  std::vector<int> train_labels;
  std::vector<std::size_t> mon_test;
  for (int cls = 0; cls < num_monitored_classes; ++cls) {
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < monitored.size(); ++i) {
      if (monitored.label(i) == cls) idx.push_back(i);
    }
    std::shuffle(idx.begin(), idx.end(), rng);
    const auto train_count = std::max<std::size_t>(
        1, static_cast<std::size_t>(cfg.train_fraction * static_cast<double>(idx.size())));
    for (std::size_t j = 0; j < idx.size(); ++j) {
      if (j < train_count) {
        train_traces.push_back(idx[j]);
        train_labels.push_back(cls);
      } else {
        mon_test.push_back(idx[j]);
      }
    }
  }
  const std::size_t mon_train = train_traces.size();

  // Background split (labels collapsed to one class).
  std::vector<std::size_t> bg_order;
  std::size_t bg_train = 0;
  split_indices(background.size(), cfg.train_fraction, rng, bg_order, bg_train);
  std::vector<std::size_t> bg_test;
  for (std::size_t j = 0; j < bg_order.size(); ++j) {
    if (j < bg_train) {
      train_traces.push_back(bg_order[j]);
      train_labels.push_back(background_label);
    } else {
      bg_test.push_back(bg_order[j]);
    }
  }

  // Batched feature extraction straight into contiguous matrices.
  const std::size_t features = kfp_feature_count();
  FeatureMatrix train_x(train_traces.size(), features);
  for (std::size_t r = 0; r < train_traces.size(); ++r) {
    const Dataset& src = r < mon_train ? monitored : background;
    kfp_features_into(src.trace(train_traces[r]), train_x.row(r));
  }

  RandomForest forest(cfg.forest);
  forest.fit({&train_x, train_labels, num_monitored_classes + 1});

  // Fingerprints of the training set for leaf-vector k-NN.
  const std::size_t trees = forest.tree_count();
  const std::size_t n_train = train_traces.size();
  const std::vector<std::uint32_t> train_leaves = forest.leaf_batch(train_x);

  // k-FP rule lives in knn_verdict; selection over the agreement counts is
  // verbatim the per-sample logic, so the batched kernel cannot change any
  // verdict.
  std::vector<std::pair<int, int>> scored;  // (matches, label) scratch
  auto classify = [&](std::span<const int> counts) -> int {
    return knn_verdict(counts, train_labels, cfg.k_neighbors, background_label, scored);
  };

  // One batched pass per test set: extract -> leaf fingerprints -> tiled
  // agreement counts -> per-query verdicts.
  auto classify_set = [&](const Dataset& src, const std::vector<std::size_t>& test_idx) {
    std::vector<int> verdicts(test_idx.size(), background_label);
    if (test_idx.empty()) return verdicts;
    FeatureMatrix qx(test_idx.size(), features);
    for (std::size_t r = 0; r < test_idx.size(); ++r) {
      kfp_features_into(src.trace(test_idx[r]), qx.row(r));
    }
    const std::vector<std::uint32_t> q_leaves = forest.leaf_batch(qx);
    constexpr std::size_t kChunk = 256;
    std::vector<int> counts;
    for (std::size_t lo = 0; lo < test_idx.size(); lo += kChunk) {
      const std::size_t hi = std::min(test_idx.size(), lo + kChunk);
      counts.assign((hi - lo) * n_train, 0);
      leaf_match_matrix(train_leaves, n_train,
                        {q_leaves.data() + lo * trees, (hi - lo) * trees}, hi - lo, trees,
                        counts);
      for (std::size_t q = lo; q < hi; ++q) {
        verdicts[q] = classify({counts.data() + (q - lo) * n_train, n_train});
      }
    }
    return verdicts;
  };

  OpenWorldResult out;
  out.monitored_tested = mon_test.size();
  out.background_tested = bg_test.size();

  const std::vector<int> mon_verdicts = classify_set(monitored, mon_test);
  std::size_t true_pos = 0, correct_site = 0;
  for (std::size_t j = 0; j < mon_test.size(); ++j) {
    if (mon_verdicts[j] != background_label) {
      ++true_pos;
      if (mon_verdicts[j] == monitored.label(mon_test[j])) ++correct_site;
    }
  }
  const std::vector<int> bg_verdicts = classify_set(background, bg_test);
  std::size_t false_pos = 0;
  for (int v : bg_verdicts) {
    if (v != background_label) ++false_pos;
  }

  if (!mon_test.empty()) {
    out.tpr = static_cast<double>(true_pos) / static_cast<double>(mon_test.size());
  }
  if (!bg_test.empty()) {
    out.fpr = static_cast<double>(false_pos) / static_cast<double>(bg_test.size());
  }
  if (true_pos + false_pos > 0) {
    out.precision = static_cast<double>(true_pos) / static_cast<double>(true_pos + false_pos);
  }
  if (true_pos > 0) {
    out.monitored_accuracy = static_cast<double>(correct_site) / static_cast<double>(true_pos);
  }
  return out;
}

OpenWorldResult open_world_stream(const FeatureStore& monitored, const FeatureStore& background,
                                  const OpenWorldStreamConfig& cfg) {
  const std::size_t features = kfp_feature_count();
  if (monitored.cols() != features || background.cols() != features) {
    throw CorpusError(CorpusErrorCode::DimMismatch, "store cols != kfp_feature_count()");
  }
  const std::size_t mon_rows = monitored.rows();
  int num_monitored_classes = 0;
  for (std::size_t r = 0; r < mon_rows; ++r) {
    num_monitored_classes = std::max(num_monitored_classes, monitored.label(r) + 1);
  }
  const int background_label = num_monitored_classes;

  Rng rng(cfg.seed);

  // Per-class stratified split of the (small, materialisable) monitored
  // store — same protocol as the in-memory evaluator.
  std::vector<std::size_t> mon_train_rows;
  std::vector<int> train_labels;
  std::vector<std::size_t> mon_test;
  for (int cls = 0; cls < num_monitored_classes; ++cls) {
    std::vector<std::size_t> idx;
    for (std::size_t r = 0; r < mon_rows; ++r) {
      if (monitored.label(r) == cls) idx.push_back(r);
    }
    std::shuffle(idx.begin(), idx.end(), rng);
    const auto train_count = std::max<std::size_t>(
        1, static_cast<std::size_t>(cfg.train_fraction * static_cast<double>(idx.size())));
    for (std::size_t j = 0; j < idx.size(); ++j) {
      if (j < train_count) {
        mon_train_rows.push_back(idx[j]);
        train_labels.push_back(cls);
      } else {
        mon_test.push_back(idx[j]);
      }
    }
  }

  // Background training fingerprints: a deterministic stride sample, so
  // membership of row r is a pure function of (rows, bg_train_count) — no
  // O(corpus) index shuffle is ever materialised.
  const std::uint64_t bg_rows = background.rows();
  const std::uint64_t bg_train_target =
      std::max<std::uint64_t>(1, std::min<std::uint64_t>(cfg.bg_train_count, bg_rows));
  const std::uint64_t step = std::max<std::uint64_t>(1, bg_rows / bg_train_target);
  const auto is_bg_train = [step, bg_train_target](std::uint64_t r) {
    return r % step == 0 && r / step < bg_train_target;
  };
  std::uint64_t bg_train = 0;
  for (std::uint64_t r = 0; r < bg_rows; r += step) {
    if (is_bg_train(r)) ++bg_train;
  }

  // Training matrix: monitored train rows then background sample rows.
  FeatureMatrix train_x(mon_train_rows.size() + bg_train, features);
  for (std::size_t r = 0; r < mon_train_rows.size(); ++r) {
    const double* src = monitored.row(mon_train_rows[r]);
    std::copy(src, src + features, train_x.row(r).begin());
  }
  {
    std::size_t w = mon_train_rows.size();
    for (std::uint64_t r = 0; r < bg_rows; r += step) {
      if (!is_bg_train(r)) continue;
      const double* src = background.row(r);
      std::copy(src, src + features, train_x.row(w++).begin());
      train_labels.push_back(background_label);
    }
  }

  RandomForest forest(cfg.forest);
  forest.fit({&train_x, train_labels, num_monitored_classes + 1});

  const std::size_t trees = forest.tree_count();
  const std::size_t n_train = train_x.rows();
  const std::vector<std::uint32_t> train_leaves = forest.leaf_batch(train_x);

  OpenWorldResult out;
  out.monitored_tested = mon_test.size();

  // Monitored test set (small): gather, fingerprint, classify.
  std::size_t true_pos = 0, correct_site = 0;
  if (!mon_test.empty()) {
    FeatureMatrix qx(mon_test.size(), features);
    for (std::size_t r = 0; r < mon_test.size(); ++r) {
      const double* src = monitored.row(mon_test[r]);
      std::copy(src, src + features, qx.row(r).begin());
    }
    const std::vector<std::uint32_t> q_leaves = forest.leaf_batch(qx);
    std::vector<int> counts(n_train, 0);
    std::vector<std::pair<int, int>> scored;
    for (std::size_t q = 0; q < mon_test.size(); ++q) {
      leaf_match_counts(train_leaves, n_train, {q_leaves.data() + q * trees, trees}, counts);
      const int v =
          knn_verdict(counts, train_labels, cfg.k_neighbors, background_label, scored);
      if (v != background_label) {
        ++true_pos;
        if (v == monitored.label(mon_test[q])) ++correct_site;
      }
    }
  }

  // Background test traffic: streamed block-wise straight off the mapping.
  // Each block is fingerprinted with the raw-pointer leaf_batch (no copy),
  // classified, and its pages dropped; per-block counters come back through
  // exp::run_ordered's ordered reduce, so totals are independent of jobs.
  struct BlockStats {
    std::uint64_t false_pos = 0;
    std::uint64_t tested = 0;
  };
  const std::uint64_t block_rows = std::max<std::size_t>(1, cfg.block_rows);
  const std::uint64_t num_blocks = (bg_rows + block_rows - 1) / block_rows;
  const std::vector<BlockStats> blocks = exp::run_ordered<BlockStats>(
      static_cast<std::size_t>(num_blocks), cfg.jobs, [&](std::size_t b) {
        const std::uint64_t lo = static_cast<std::uint64_t>(b) * block_rows;
        const std::uint64_t n = std::min<std::uint64_t>(block_rows, bg_rows - lo);
        const double* rows = background.block(lo, n);
        std::vector<std::uint32_t> q_leaves(n * trees);
        forest.leaf_batch(rows, background.row_stride(), n, q_leaves.data());
        BlockStats stats;
        std::vector<int> counts(n_train, 0);
        std::vector<std::pair<int, int>> scored;
        for (std::uint64_t q = 0; q < n; ++q) {
          if (is_bg_train(lo + q)) continue;  // training rows are not test traffic
          leaf_match_counts(train_leaves, n_train, {q_leaves.data() + q * trees, trees},
                            counts);
          const int v =
              knn_verdict(counts, train_labels, cfg.k_neighbors, background_label, scored);
          stats.tested += 1;
          if (v != background_label) stats.false_pos += 1;
        }
        background.drop_rows(lo, n);  // return this block's pages to the kernel
        return stats;
      });

  std::uint64_t false_pos = 0, bg_tested = 0;
  for (const BlockStats& s : blocks) {
    false_pos += s.false_pos;
    bg_tested += s.tested;
  }
  out.background_tested = static_cast<std::size_t>(bg_tested);

  if (!mon_test.empty()) {
    out.tpr = static_cast<double>(true_pos) / static_cast<double>(mon_test.size());
  }
  if (bg_tested > 0) {
    out.fpr = static_cast<double>(false_pos) / static_cast<double>(bg_tested);
  }
  if (true_pos + false_pos > 0) {
    out.precision = static_cast<double>(true_pos) / static_cast<double>(true_pos + false_pos);
  }
  if (true_pos > 0) {
    out.monitored_accuracy = static_cast<double>(correct_site) / static_cast<double>(true_pos);
  }
  return out;
}

}  // namespace stob::wf
