# Empty compiler generated dependencies file for defense_comparison.
# This may be replaced when dependencies are built.
