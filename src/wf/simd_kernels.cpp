#include "wf/simd_kernels.hpp"

#include "util/simd.hpp"

#if !defined(STOB_SIMD_DISABLED) && (defined(__x86_64__) || defined(__i386__))
#define STOB_KERNELS_AVX2 1
#include <immintrin.h>
#endif
#if !defined(STOB_SIMD_DISABLED) && defined(__aarch64__) && defined(__ARM_NEON)
#define STOB_KERNELS_NEON 1
#include <arm_neon.h>
#endif

namespace stob::wf::kernels {

// ------------------------------------------------------- forest descent

namespace {

inline std::uint32_t descend_one(const FlatNode* nodes, std::uint32_t root, const double* x) {
  std::uint32_t cur = root;
  while (nodes[cur].feature >= 0) {
    const FlatNode& nd = nodes[cur];
    cur = nd.kid[!(x[static_cast<std::size_t>(nd.feature)] <= nd.threshold)];
  }
  return cur;
}

}  // namespace

void descend_block_scalar(const FlatNode* nodes, std::uint32_t root, const double* x,
                          std::size_t stride, std::size_t m, std::uint32_t* leaves) {
  // One branch-free level step for one lane; a lane already at its leaf
  // (feature < 0) re-selects the leaf via conditional moves.
  const auto step = [nodes](std::uint32_t c, std::int32_t f, const double* row) {
    const FlatNode& nd = nodes[c];
    const std::size_t i = f < 0 ? 0 : static_cast<std::size_t>(f);
    const std::uint32_t next = nd.kid[!(row[i] <= nd.threshold)];
    return f < 0 ? c : next;
  };
  // Four lanes in flight: their dependent node loads overlap instead of
  // serializing, and the group exits once all four reached a leaf (max of
  // four path lengths, not tree depth).
  std::size_t r = 0;
  for (; r + 4 <= m; r += 4) {
    std::uint32_t c0 = root, c1 = root, c2 = root, c3 = root;
    const double* x0 = x + r * stride;
    const double* x1 = x0 + stride;
    const double* x2 = x1 + stride;
    const double* x3 = x2 + stride;
    while (true) {
      const std::int32_t f0 = nodes[c0].feature;
      const std::int32_t f1 = nodes[c1].feature;
      const std::int32_t f2 = nodes[c2].feature;
      const std::int32_t f3 = nodes[c3].feature;
      if ((f0 & f1 & f2 & f3) < 0) break;  // all four at leaves
      c0 = step(c0, f0, x0);
      c1 = step(c1, f1, x1);
      c2 = step(c2, f2, x2);
      c3 = step(c3, f3, x3);
    }
    leaves[r] = c0;
    leaves[r + 1] = c1;
    leaves[r + 2] = c2;
    leaves[r + 3] = c3;
  }
  for (; r < m; ++r) leaves[r] = descend_one(nodes, root, x + r * stride);
}

#if STOB_KERNELS_AVX2

// Eight lanes per group as two 4-wide double halves. Node fields are
// fetched with byte-offset gathers (index = node*24 + field, scale 1);
// 32-bit offsets cap the pool at ~89M nodes, far beyond any forest here.
// Lanes already at a leaf clamp their feature index to 0 (an in-bounds
// read of the row, like the scalar step) and re-select their own node via
// the `done` blend, so no masked gathers are needed and every gather stays
// inside the node pool / sample block. The x <= thr compare is _CMP_LE_OQ:
// ordered, so a NaN feature selects kid[1] exactly like scalar !(x <= thr).
__attribute__((target("avx2"))) void descend_block_avx2(const FlatNode* nodes,
                                                        std::uint32_t root, const double* x,
                                                        std::size_t stride, std::size_t m,
                                                        std::uint32_t* leaves) {
  const char* node_bytes = reinterpret_cast<const char*>(nodes);
  const int s = static_cast<int>(stride);
  const __m256i lane_off = _mm256_setr_epi32(0, s, 2 * s, 3 * s, 4 * s, 5 * s, 6 * s, 7 * s);
  const __m256i zero = _mm256_setzero_si256();
  const __m256i k24 = _mm256_set1_epi32(24);
  const __m256i pack_low32 = _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6);
  std::size_t r = 0;
  for (; r + 8 <= m; r += 8) {
    const double* base = x + r * stride;
    __m256i cur = _mm256_set1_epi32(static_cast<int>(root));
    for (;;) {
      const __m256i byte_off = _mm256_mullo_epi32(cur, k24);
      const __m256i feat = _mm256_i32gather_epi32(
          reinterpret_cast<const int*>(node_bytes + offsetof(FlatNode, feature)), byte_off, 1);
      const __m256i done = _mm256_cmpgt_epi32(zero, feat);  // feature < 0
      if (_mm256_movemask_epi8(done) == -1) break;          // all 8 at leaves
      const __m256i fcl = _mm256_max_epi32(feat, zero);
      const __m128i off_lo = _mm256_castsi256_si128(byte_off);
      const __m128i off_hi = _mm256_extracti128_si256(byte_off, 1);
      const __m256d thr_lo =
          _mm256_i32gather_pd(reinterpret_cast<const double*>(node_bytes), off_lo, 1);
      const __m256d thr_hi =
          _mm256_i32gather_pd(reinterpret_cast<const double*>(node_bytes), off_hi, 1);
      const __m256i xi = _mm256_add_epi32(lane_off, fcl);
      const __m256d xv_lo = _mm256_i32gather_pd(base, _mm256_castsi256_si128(xi), 8);
      const __m256d xv_hi = _mm256_i32gather_pd(base, _mm256_extracti128_si256(xi, 1), 8);
      const __m256d le_lo = _mm256_cmp_pd(xv_lo, thr_lo, _CMP_LE_OQ);
      const __m256d le_hi = _mm256_cmp_pd(xv_hi, thr_hi, _CMP_LE_OQ);
      // kid[0] (low 32) and kid[1] (high 32) arrive as one 64-bit gather;
      // `le ? kid[0] : kid[1]` is a blend between the pair and the pair
      // shifted down 32, then the 64-bit lanes are packed back to u32.
      const __m256i pair_lo = _mm256_i32gather_epi64(
          reinterpret_cast<const long long*>(node_bytes + offsetof(FlatNode, kid)), off_lo, 1);
      const __m256i pair_hi = _mm256_i32gather_epi64(
          reinterpret_cast<const long long*>(node_bytes + offsetof(FlatNode, kid)), off_hi, 1);
      const __m256i sel_lo = _mm256_blendv_epi8(_mm256_srli_epi64(pair_lo, 32), pair_lo,
                                                _mm256_castpd_si256(le_lo));
      const __m256i sel_hi = _mm256_blendv_epi8(_mm256_srli_epi64(pair_hi, 32), pair_hi,
                                                _mm256_castpd_si256(le_hi));
      const __m128i n_lo =
          _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(sel_lo, pack_low32));
      const __m128i n_hi =
          _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(sel_hi, pack_low32));
      const __m256i next = _mm256_set_m128i(n_hi, n_lo);
      cur = _mm256_blendv_epi8(next, cur, done);  // finished lanes stay put
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(leaves + r), cur);
  }
  if (r < m) descend_block_scalar(nodes, root, x + r * stride, stride, m - r, leaves + r);
}

#endif  // STOB_KERNELS_AVX2

void descend_block(const FlatNode* nodes, std::uint32_t root, const double* x,
                   std::size_t stride, std::size_t m, std::uint32_t* leaves) {
#if STOB_KERNELS_AVX2
  if (simd::active_level() == simd::Level::Avx2) {
    descend_block_avx2(nodes, root, x, stride, m, leaves);
    return;
  }
#endif
  // NEON has no gather; the 4-lane ILP scalar path is the AArch64 descent.
  descend_block_scalar(nodes, root, x, stride, m, leaves);
}

// ------------------------------------------------- leaf-agreement counts

void leaf_match_block_scalar(const std::uint32_t* train, std::size_t n_train,
                             std::size_t trees, const std::uint32_t* query, int* counts) {
  for (std::size_t i = 0; i < n_train; ++i) {
    const std::uint32_t* row = train + i * trees;
    int c = 0;
    for (std::size_t t = 0; t < trees; ++t) c += static_cast<int>(row[t] == query[t]);
    counts[i] = c;
  }
}

#if STOB_KERNELS_AVX2

__attribute__((target("avx2"))) void leaf_match_block_avx2(const std::uint32_t* train,
                                                           std::size_t n_train,
                                                           std::size_t trees,
                                                           const std::uint32_t* query,
                                                           int* counts) {
  for (std::size_t i = 0; i < n_train; ++i) {
    const std::uint32_t* row = train + i * trees;
    __m256i acc = _mm256_setzero_si256();
    std::size_t t = 0;
    for (; t + 8 <= trees; t += 8) {
      const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + t));
      const __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(query + t));
      // cmpeq lanes are -1 on match; subtracting adds 1 per match.
      acc = _mm256_sub_epi32(acc, _mm256_cmpeq_epi32(a, b));
    }
    __m128i s = _mm_add_epi32(_mm256_castsi256_si128(acc), _mm256_extracti128_si256(acc, 1));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
    int c = _mm_cvtsi128_si32(s);
    for (; t < trees; ++t) c += static_cast<int>(row[t] == query[t]);
    counts[i] = c;
  }
}

#endif

#if STOB_KERNELS_NEON

void leaf_match_block_neon(const std::uint32_t* train, std::size_t n_train, std::size_t trees,
                           const std::uint32_t* query, int* counts) {
  for (std::size_t i = 0; i < n_train; ++i) {
    const std::uint32_t* row = train + i * trees;
    uint32x4_t acc = vdupq_n_u32(0);
    std::size_t t = 0;
    for (; t + 4 <= trees; t += 4) {
      acc = vsubq_u32(acc, vceqq_u32(vld1q_u32(row + t), vld1q_u32(query + t)));
    }
    int c = static_cast<int>(vaddvq_u32(acc));
    for (; t < trees; ++t) c += static_cast<int>(row[t] == query[t]);
    counts[i] = c;
  }
}

#endif

void leaf_match_block(const std::uint32_t* train, std::size_t n_train, std::size_t trees,
                      const std::uint32_t* query, int* counts) {
#if STOB_KERNELS_AVX2
  if (simd::active_level() == simd::Level::Avx2) {
    leaf_match_block_avx2(train, n_train, trees, query, counts);
    return;
  }
#endif
#if STOB_KERNELS_NEON
  if (simd::active_level() == simd::Level::Neon) {
    leaf_match_block_neon(train, n_train, trees, query, counts);
    return;
  }
#endif
  leaf_match_block_scalar(train, n_train, trees, query, counts);
}

// ------------------------------------------------- feature-scan kernels

void pair_diffs_scalar(const double* xs, std::size_t n, double* out) {
  for (std::size_t i = 1; i < n; ++i) out[i - 1] = xs[i] - xs[i - 1];
}

std::size_t count_gt_scalar(const double* xs, std::size_t n, double thr) {
  std::size_t c = 0;
  for (std::size_t i = 0; i < n; ++i) c += xs[i] > thr;
  return c;
}

double sum_ints_scalar(const double* xs, std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += xs[i];
  return s;
}

void band_counts_scalar(const double* xs, std::size_t n, double lo, double hi, double* below,
                        double* mid, double* above) {
  double b = 0, m = 0, a = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (xs[i] < lo) {
      b += 1;
    } else if (xs[i] < hi) {
      m += 1;
    } else {
      a += 1;
    }
  }
  *below = b;
  *mid = m;
  *above = a;
}

#if STOB_KERNELS_AVX2

__attribute__((target("avx2"))) void pair_diffs_avx2(const double* xs, std::size_t n,
                                                     double* out) {
  if (n < 2) return;
  const std::size_t diffs = n - 1;
  std::size_t i = 0;
  for (; i + 4 <= diffs; i += 4) {
    const __m256d hi = _mm256_loadu_pd(xs + i + 1);
    const __m256d lo = _mm256_loadu_pd(xs + i);
    _mm256_storeu_pd(out + i, _mm256_sub_pd(hi, lo));
  }
  for (; i < diffs; ++i) out[i] = xs[i + 1] - xs[i];
}

__attribute__((target("avx2"))) std::size_t count_gt_avx2(const double* xs, std::size_t n,
                                                          double thr) {
  const __m256d t = _mm256_set1_pd(thr);
  std::size_t c = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d gt = _mm256_cmp_pd(_mm256_loadu_pd(xs + i), t, _CMP_GT_OQ);
    c += static_cast<std::size_t>(__builtin_popcount(
        static_cast<unsigned>(_mm256_movemask_pd(gt))));
  }
  for (; i < n; ++i) c += xs[i] > thr;
  return c;
}

// Exact only because the inputs are integer-valued (0/1 indicators, packet
// counts): integer sums below 2^53 do not round, so lane order is free.
__attribute__((target("avx2"))) double sum_ints_avx2(const double* xs, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) acc = _mm256_add_pd(acc, _mm256_loadu_pd(xs + i));
  const __m128d half = _mm_add_pd(_mm256_castpd256_pd128(acc), _mm256_extractf128_pd(acc, 1));
  double s = _mm_cvtsd_f64(_mm_add_sd(half, _mm_unpackhi_pd(half, half)));
  for (; i < n; ++i) s += xs[i];
  return s;
}

__attribute__((target("avx2"))) void band_counts_avx2(const double* xs, std::size_t n,
                                                      double lo, double hi, double* below,
                                                      double* mid, double* above) {
  const __m256d vlo = _mm256_set1_pd(lo);
  const __m256d vhi = _mm256_set1_pd(hi);
  std::size_t lt_lo = 0, lt_hi = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(xs + i);
    lt_lo += static_cast<std::size_t>(__builtin_popcount(
        static_cast<unsigned>(_mm256_movemask_pd(_mm256_cmp_pd(v, vlo, _CMP_LT_OQ)))));
    lt_hi += static_cast<std::size_t>(__builtin_popcount(
        static_cast<unsigned>(_mm256_movemask_pd(_mm256_cmp_pd(v, vhi, _CMP_LT_OQ)))));
  }
  for (; i < n; ++i) {
    lt_lo += xs[i] < lo;
    lt_hi += xs[i] < hi;
  }
  *below = static_cast<double>(lt_lo);
  *mid = static_cast<double>(lt_hi - lt_lo);
  *above = static_cast<double>(n - lt_hi);
}

#endif  // STOB_KERNELS_AVX2

#if STOB_KERNELS_NEON

void pair_diffs_neon(const double* xs, std::size_t n, double* out) {
  if (n < 2) return;
  const std::size_t diffs = n - 1;
  std::size_t i = 0;
  for (; i + 2 <= diffs; i += 2) {
    vst1q_f64(out + i, vsubq_f64(vld1q_f64(xs + i + 1), vld1q_f64(xs + i)));
  }
  for (; i < diffs; ++i) out[i] = xs[i + 1] - xs[i];
}

std::size_t count_gt_neon(const double* xs, std::size_t n, double thr) {
  const float64x2_t t = vdupq_n_f64(thr);
  uint64x2_t acc = vdupq_n_u64(0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) acc = vsubq_u64(acc, vcgtq_f64(vld1q_f64(xs + i), t));
  std::size_t c = static_cast<std::size_t>(vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1));
  for (; i < n; ++i) c += xs[i] > thr;
  return c;
}

double sum_ints_neon(const double* xs, std::size_t n) {
  float64x2_t acc = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) acc = vaddq_f64(acc, vld1q_f64(xs + i));
  double s = vaddvq_f64(acc);
  for (; i < n; ++i) s += xs[i];
  return s;
}

void band_counts_neon(const double* xs, std::size_t n, double lo, double hi, double* below,
                      double* mid, double* above) {
  const float64x2_t vlo = vdupq_n_f64(lo);
  const float64x2_t vhi = vdupq_n_f64(hi);
  uint64x2_t acc_lo = vdupq_n_u64(0), acc_hi = vdupq_n_u64(0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t v = vld1q_f64(xs + i);
    acc_lo = vsubq_u64(acc_lo, vcltq_f64(v, vlo));
    acc_hi = vsubq_u64(acc_hi, vcltq_f64(v, vhi));
  }
  std::size_t lt_lo =
      static_cast<std::size_t>(vgetq_lane_u64(acc_lo, 0) + vgetq_lane_u64(acc_lo, 1));
  std::size_t lt_hi =
      static_cast<std::size_t>(vgetq_lane_u64(acc_hi, 0) + vgetq_lane_u64(acc_hi, 1));
  for (; i < n; ++i) {
    lt_lo += xs[i] < lo;
    lt_hi += xs[i] < hi;
  }
  *below = static_cast<double>(lt_lo);
  *mid = static_cast<double>(lt_hi - lt_lo);
  *above = static_cast<double>(n - lt_hi);
}

#endif  // STOB_KERNELS_NEON

void pair_diffs(const double* xs, std::size_t n, double* out) {
#if STOB_KERNELS_AVX2
  if (simd::active_level() == simd::Level::Avx2) return pair_diffs_avx2(xs, n, out);
#endif
#if STOB_KERNELS_NEON
  if (simd::active_level() == simd::Level::Neon) return pair_diffs_neon(xs, n, out);
#endif
  pair_diffs_scalar(xs, n, out);
}

std::size_t count_gt(const double* xs, std::size_t n, double thr) {
#if STOB_KERNELS_AVX2
  if (simd::active_level() == simd::Level::Avx2) return count_gt_avx2(xs, n, thr);
#endif
#if STOB_KERNELS_NEON
  if (simd::active_level() == simd::Level::Neon) return count_gt_neon(xs, n, thr);
#endif
  return count_gt_scalar(xs, n, thr);
}

double sum_ints(const double* xs, std::size_t n) {
#if STOB_KERNELS_AVX2
  if (simd::active_level() == simd::Level::Avx2) return sum_ints_avx2(xs, n);
#endif
#if STOB_KERNELS_NEON
  if (simd::active_level() == simd::Level::Neon) return sum_ints_neon(xs, n);
#endif
  return sum_ints_scalar(xs, n);
}

void band_counts(const double* xs, std::size_t n, double lo, double hi, double* below,
                 double* mid, double* above) {
#if STOB_KERNELS_AVX2
  if (simd::active_level() == simd::Level::Avx2) {
    return band_counts_avx2(xs, n, lo, hi, below, mid, above);
  }
#endif
#if STOB_KERNELS_NEON
  if (simd::active_level() == simd::Level::Neon) {
    return band_counts_neon(xs, n, lo, hi, below, mid, above);
  }
#endif
  band_counts_scalar(xs, n, lo, hi, below, mid, above);
}

}  // namespace stob::wf::kernels
