// Stob policy interface — the paper's core contribution (§4).
//
// A Policy is consulted by the transport at the exact points where the
// decisions WF defenses need to control are made:
//
//   * the TSO super-segment size (how much data goes down in one stack
//     traversal — controls burst granularity),
//   * the wire packet size (the per-packet payload the NIC splits to —
//     normally MSS/PMTU),
//   * the departure time (normally the CCA pacing schedule).
//
// The transport proposes what congestion control / autosizing would do
// (`SegmentContext`) and the policy returns what should actually happen
// (`SegmentDecision`). Wrapping any policy in CcaGuard (cca_guard.hpp)
// enforces the paper's safety rule: the obfuscated flow must never be more
// aggressive than the CCA's own schedule.
#pragma once

#include <memory>
#include <string>

#include "net/packet.hpp"
#include "util/units.hpp"

namespace stob::core {

/// What the transport was about to do with the next segment.
struct SegmentContext {
  net::FlowKey flow;
  TimePoint now;
  std::uint64_t stream_offset = 0;  ///< first byte of the segment
  Bytes cca_segment;                ///< TSO super-segment size chosen by autosizing
  Bytes mss;                        ///< wire packet payload size in effect
  TimePoint cca_departure;          ///< departure time the CCA pacing assigned
  DataRate cca_pacing_rate;         ///< current CCA pacing rate (0 = unpaced)
  bool is_retransmission = false;
};

/// What should actually be sent.
struct SegmentDecision {
  Bytes segment;      ///< possibly reduced super-segment size (>= 1 byte)
  Bytes wire_mss;     ///< possibly reduced per-wire-packet payload
  TimePoint departure;

  /// Identity decision: exactly what the CCA wanted.
  static SegmentDecision passthrough(const SegmentContext& ctx) {
    return SegmentDecision{ctx.cca_segment, ctx.mss, ctx.cca_departure};
  }
};

class Policy {
 public:
  virtual ~Policy() = default;

  virtual SegmentDecision on_segment(const SegmentContext& ctx) = 0;

  /// Lifecycle notifications (per-flow state setup/teardown).
  virtual void on_flow_start(const net::FlowKey& /*flow*/) {}
  virtual void on_flow_end(const net::FlowKey& /*flow*/) {}

  virtual std::string name() const = 0;
};

/// No-op policy: stack behaves exactly as an unmodified host.
class NullPolicy final : public Policy {
 public:
  SegmentDecision on_segment(const SegmentContext& ctx) override {
    return SegmentDecision::passthrough(ctx);
  }
  std::string name() const override { return "null"; }
};

}  // namespace stob::core
