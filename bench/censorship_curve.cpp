// Extension of Table 2 (§3's censorship argument): k-FP accuracy as a
// function of the observed prefix length N, for each countermeasure. The
// paper's claim is that the countermeasures *slow the growth* of attack
// confidence — a censor that must decide early sees a less fingerprintable
// prefix — even when whole-trace accuracy is unaffected (or helped).
//
// Environment knobs: STOB_SAMPLES (default 50), STOB_TREES (default 80),
// STOB_FOLDS (default 5), STOB_SEED.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "defenses/trace_defense.hpp"
#include "wf/kfp.hpp"
#include "workload/page_load.hpp"

namespace {

using namespace stob;

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoll(v) : fallback;
}

}  // namespace

int main() {
  const auto samples = static_cast<std::size_t>(env_int("STOB_SAMPLES", 50));
  const auto trees = static_cast<std::size_t>(env_int("STOB_TREES", 80));
  const auto folds = static_cast<std::size_t>(env_int("STOB_FOLDS", 5));
  const auto seed = static_cast<std::uint64_t>(env_int("STOB_SEED", 20251117));

  std::printf("=== Censorship curve: k-FP accuracy vs observed prefix length ===\n");
  std::printf("9 simulated sites x %zu samples; k-FP %zu trees, %zu folds\n\n", samples, trees,
              folds);

  workload::PageLoadOptions options;
  const wf::Dataset data =
      workload::collect_dataset(workload::nine_sites(), samples, seed, options)
          .sanitized_by_download_size(0.75);

  defenses::SplitDefense split;
  defenses::DelayDefense delay;
  defenses::CombinedDefense combined;
  struct Variant {
    const char* name;
    const defenses::TraceDefense* defense;
  };
  const std::vector<Variant> variants{
      {"Original", nullptr}, {"Split", &split}, {"Delayed", &delay}, {"Combined", &combined}};

  wf::KFingerprint::Config kfp_cfg;
  kfp_cfg.forest.num_trees = trees;

  std::printf("%-6s", "N");
  for (const auto& v : variants) std::printf("  %-10s", v.name);
  std::printf("\n");

  for (std::size_t n : {5, 10, 15, 20, 30, 45, 60, 90, 150, 0}) {
    std::printf("%-6s", n == 0 ? "All" : std::to_string(n).c_str());
    for (const auto& v : variants) {
      Rng rng(seed ^ 0xCC5ull);
      const wf::Dataset defended = data.transformed([&](const wf::Trace& t) {
        wf::Trace out =
            v.defense != nullptr ? defenses::apply_to_prefix(*v.defense, t, n, rng) : t;
        return n == 0 ? out : out.truncated(n);
      });
      const wf::EvalResult res = wf::cross_validate(defended, kfp_cfg, folds, seed);
      std::printf("  %-10.3f", res.mean_accuracy);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf("\nReading: with countermeasures the curve climbs more slowly — the censor\n");
  std::printf("needs more packets for the same confidence, delaying the blocking decision.\n");
  return 0;
}
