// Page-load driver: emulates a browser fetching a page (sampled from a
// SiteProfile) from a server over the simulated stack, and records the
// resulting packet trace at the client's vantage point.
//
// Protocol emulation: since packets carry sizes rather than bytes, the
// driver plays both endpoints and coordinates request/response framing
// out-of-band (the request sizes the client sends are registered with the
// scripted server, which responds with the planned object after its think
// time). Each connection starts with a TLS-handshake-shaped exchange, then
// the first connection fetches the HTML; once the HTML is in, the client
// opens its remaining parallel connections and round-robins the objects.
#pragma once

#include <deque>
#include <memory>
#include <unordered_map>

#include "core/policy.hpp"
#include "fault/fault.hpp"
#include "stack/tls_record.hpp"
#include "stack/host_pair.hpp"
#include "tcp/tcp_connection.hpp"
#include "util/rng.hpp"
#include "wf/trace.hpp"
#include "workload/website.hpp"

namespace stob::workload {

struct PageLoadOptions {
  /// Connection configuration used for the client-side sockets.
  tcp::TcpConnection::Config client_conn;
  /// Connection configuration for server-side sockets; install a Stob
  /// policy here to model a server-side in-stack defense.
  tcp::TcpConnection::Config server_conn;
  /// Multiplicative jitter applied to the profile's access rate (lognormal
  /// sigma) and one-way delay (uniform +-) per sample.
  double rate_sigma = 0.15;
  double delay_jitter = 0.12;
  /// Frame every request/response through the TLS record layer (adds
  /// per-record overhead and honours tls.pad_to record padding — the
  /// application-side padding locus the paper points at in §4.2).
  bool tls_records = false;
  stack::TlsConfig tls;
  /// Adverse-network fault profile applied to the path (forward = client ->
  /// server). The default ("clean", no impairments) attaches nothing, so
  /// un-faulted runs are byte-identical to builds without the fault layer.
  fault::PathProfile path_faults;
  /// Give up after this much simulated time.
  Duration timeout = Duration::seconds(60);
};

struct PageLoadResult {
  wf::Trace trace;
  Duration page_load_time;      ///< first SYN to last object byte
  std::int64_t response_bytes = 0;
  std::size_t objects_fetched = 0;
  bool completed = false;
  /// Simulator events executed for this load — the denominator perf
  /// harnesses (bench/perf_suite) use to report end-to-end events/sec.
  std::uint64_t sim_events = 0;
};

/// Run one page load in a fresh simulation. Deterministic for a given rng
/// state.
PageLoadResult run_page_load(const SiteProfile& profile, Rng& rng,
                             const PageLoadOptions& options);

/// Collect `samples` page loads per site into a labeled dataset (labels are
/// indices into `sites`). `seed` controls all randomness.
wf::Dataset collect_dataset(const std::vector<SiteProfile>& sites, std::size_t samples,
                            std::uint64_t seed, const PageLoadOptions& options);

}  // namespace stob::workload
