// RegulaTor (Holland & Hopper, PETS'22) as a streaming Stob policy.
//
// Full algorithm, not the trace-level sketch in baselines.cpp:
//  * Downloads are re-shaped onto a *surge schedule*: from surge start t0
//    the send rate is R * D^(t - t0) packets/second, each slot carrying a
//    queued real packet when one is available and a dummy otherwise (up to
//    the padding budget).
//  * Surge detection: when the backlog of queued real downloads exceeds
//    `surge_threshold` times the current (decayed) rate, the surge restarts
//    (t0 = now, rate back to R) — a page's object bursts each get a fresh
//    surge, which is what hides their boundaries.
//  * Upload rate-coupling: the client may transmit one upload per
//    `upload_ratio` scheduled downloads; real uploads queue for a token and
//    excess tokens emit dummy uploads while the download schedule is hot.
//  * The schedule goes idle when there is neither payload nor padding
//    budget left; the next real download starts a new surge.
//
// Every real packet is eventually transmitted (finish() drains both queues
// on the decaying schedule, clamped at `min_rate` so draining terminates),
// so the policy never destroys payload — the defense-invariant property
// tests rely on this. The policy is deterministic given its input events;
// it draws nothing from the job Rng.
#pragma once

#include <deque>

#include "defenses/policy.hpp"

namespace stob::defenses {

class RegulatorPolicy final : public Policy {
 public:
  struct Config {
    double initial_rate = 300.0;   ///< R: packets/second at surge start
    double decay = 0.9;            ///< D: per-second rate multiplier
    double surge_threshold = 2.0;  ///< T: backlog / rate ratio restarting a surge
    double upload_ratio = 4.0;     ///< U: scheduled downloads per upload token
    std::int64_t packet_size = 1514;  ///< all emissions padded to this
    int padding_budget = 120;      ///< N: max dummy downloads per trace
    double min_rate = 5.0;         ///< decay floor, keeps draining finite
  };

  RegulatorPolicy() : RegulatorPolicy(Config{}) {}
  explicit RegulatorPolicy(Config cfg) : cfg_(cfg) {}

  std::string name() const override { return "regulator"; }
  void begin(Rng& rng) override;
  void on_packet(const PacketEvent& ev, std::vector<PacketOut>& out) override;
  void finish(double end_time, std::vector<PacketOut>& out) override;

 private:
  /// Run the surge schedule up to (and including) slots at time <= `until`.
  /// `draining` allows the schedule to keep emitting with an empty download
  /// queue only while dummies remain in budget.
  void run_schedule(double until, bool draining, std::vector<PacketOut>& out);
  void emit_upload(double t, std::vector<PacketOut>& out);
  double rate_at(double t) const;

  Config cfg_;
  std::deque<std::int64_t> down_queue_;  // real download sizes awaiting a slot
  std::deque<std::int64_t> up_queue_;    // real upload sizes awaiting a token
  double surge_start_ = 0.0;
  double next_slot_ = 0.0;
  bool idle_ = true;
  std::uint64_t scheduled_downloads_ = 0;  // slots emitted (real + dummy)
  double upload_credit_ = 0.0;             // fractional upload tokens earned
  int dummies_sent_ = 0;
};

}  // namespace stob::defenses
