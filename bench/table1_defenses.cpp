// Reproduces Table 1 of the paper: the WF defense landscape — each
// defense's target, strategy and traffic-manipulation primitives — extended
// with *measured* numbers on the simulated 9-site dataset:
//
//   * bandwidth overhead (the paper quotes ~80% for FRONT and 309% for
//     QCSD-style padding; padding-based defenses should dominate here),
//   * latency overhead (timing defenses trade time instead of bytes),
//   * residual k-FP accuracy (protection actually delivered).
//
// This is the quantitative backbone of the paper's §2.3 argument: current
// defenses lean on padding because stacks offer no robust timing/sizing
// control, and padding is the expensive primitive.
//
// Runs on the parallel experiment engine (src/exp/): trace collection is a
// (site x sample) job grid and each defense's overhead + k-FP evaluation is
// one job, so output is byte-identical for any --jobs value.
//
// Flags: --jobs N (default hardware concurrency), --check-determinism,
// --manifest PATH / --trace-events PATH (either turns the span profiler on
// and exports a run manifest / Chrome trace_event timeline), and the result
// cache set: --cache DIR (or STOB_CACHE), --no-cache, --cache-stats,
// --cache-gc BYTES. With both --check-determinism and a cache, the driver
// additionally asserts a warm-cache re-run's deterministic manifest is
// byte-identical to a cold (cache-bypassing) one.
//
// Pareto mode: --pareto PATH replaces the single-condition table with a
// (defense zoo x CCA x fault profile) sweep. Every cell re-collects the
// dataset under its (CCA, fault) condition, then measures bandwidth /
// latency overhead and residual k-FP accuracy; PATH receives one CSV row
// per cell and stdout gets the per-defense aggregate with the Pareto front
// (min bandwidth overhead vs min accuracy) marked. --smoke shrinks the
// sweep (3 sites x 3 samples, 2 CCAs x 2 faults, 15 trees) for CI.
//
// Environment knobs: STOB_SAMPLES (default 24), STOB_TREES (default 60),
// STOB_FOLDS (default 3), STOB_SEED, STOB_JOBS.
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "defenses/baselines.hpp"
#include "exp/experiment.hpp"
#include "exp/worker_pool.hpp"
#include "fault/fault.hpp"
#include "obs/manifest.hpp"
#include "obs/prof.hpp"
#include "util/csv.hpp"
#include "wf/kfp.hpp"
#include "workload/page_load.hpp"

namespace {

using namespace stob;

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoll(v) : fallback;
}

struct DefenseRow {
  std::string name, target, strategy, manipulation;
  defenses::Overhead overhead;
  wf::EvalResult eval;
};

struct ParetoCell {
  std::string defense, target, strategy, manipulation, cca, fault;
  defenses::Overhead overhead;
  wf::EvalResult eval;
};

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

// With --check-determinism and a cache, assert the warm-cache re-run of the
// collection grid produces a deterministic manifest (tool/config/seed/span
// structure; harness timing facts excluded) byte-identical to a cache-
// bypassing re-run. CI drives this at --proc-workers 0/1/4, so the check
// covers the in-process cached path and the supervisor's probe/commit hooks
// alike. Returns nonzero on mismatch.
int verify_warm_manifest(const exp::ExperimentGrid& grid, exp::RunOptions run,
                         exp::ResultCache* cache, std::size_t jobs, std::uint64_t seed) {
  run.check_determinism = false;
  run.proc_report = nullptr;
  run.proc.journal_path.clear();
  run.proc.resume = false;
  const auto manifest_of = [&](exp::ResultCache* c) {
    obs::Profiler p;
    {
      obs::ScopedProfiler guard(p);
      obs::ProfSpan span("collect");
      exp::RunOptions r = run;
      r.cache = c;
      exp::run_grid(grid, r);
    }
    return obs::build_manifest("table1_defenses", p, nullptr, jobs, seed).deterministic_json();
  };
  // The manifest runs are profiled, which keys a separate entry space
  // (payloads carry span records): populate it first so the "warm" manifest
  // below is genuinely served from the cache, not quietly recomputed.
  manifest_of(cache);
  const exp::ResultCache::Stats before = cache->stats();
  const std::string warm = manifest_of(cache);
  const exp::ResultCache::Stats served = cache->stats();
  const std::string cold = manifest_of(nullptr);
  if (served.hits - before.hits != grid.job_count()) {
    std::fprintf(stderr,
                 "table1_defenses: warm manifest run recomputed cells (%llu of %zu served)\n",
                 static_cast<unsigned long long>(served.hits - before.hits), grid.job_count());
    return 1;
  }
  if (warm != cold) {
    std::fprintf(stderr,
                 "table1_defenses: warm-cache deterministic manifest differs from cold run\n");
    return 1;
  }
  std::fprintf(stderr, "table1_defenses: warm-cache manifest identical to cold run\n");
  return 0;
}

// The (defense zoo x CCA x fault) Pareto sweep behind --pareto.
int run_pareto(const exp::Cli& cli, std::size_t samples, std::size_t trees,
               std::size_t folds, std::uint64_t seed, std::size_t jobs) {
  const bool smoke = cli.has("--smoke");
  if (smoke) {
    samples = 3;
    trees = 15;
    folds = 2;
  }
  const std::vector<std::string> ccas =
      smoke ? std::vector<std::string>{"cubic", "bbr"}
            : std::vector<std::string>{"reno", "cubic", "bbr"};
  const std::vector<fault::PathProfile> scenarios = fault::all_scenarios();
  // clean + bursty loss (+ heavy jitter in full mode): one loss-shaped and
  // one timing-shaped impairment, the two axes defenses are sensitive to.
  std::vector<fault::PathProfile> faults = {scenarios[0], scenarios[1]};
  if (!smoke) faults.push_back(scenarios[5]);

  obs::Profiler prof;
  std::optional<obs::ScopedProfiler> prof_guard;
  if (cli.profile()) prof_guard.emplace(prof);

  exp::ExperimentGrid grid;
  const std::vector<workload::SiteProfile>& nine = workload::nine_sites();
  grid.sites.assign(nine.begin(), nine.begin() + (smoke ? 3 : nine.size()));
  grid.samples = samples;
  grid.ccas = ccas;
  grid.faults = faults;
  grid.base_seed = seed;

  const std::size_t C = ccas.size();
  const std::size_t F = faults.size();
  std::printf("=== Pareto sweep: defense zoo x CCA x fault profile ===\n");
  std::printf("dataset: %zu sites x %zu samples per condition; %zu CCAs x %zu faults; "
              "k-FP %zu trees, %zu folds%s\n\n",
              grid.sites.size(), samples, C, F, trees, folds, smoke ? " [smoke]" : "");
  std::fprintf(stderr, "table1_defenses: pareto sweep with %zu jobs\n", jobs);

  exp::RunOptions run;
  run.jobs = jobs;
  run.check_determinism = cli.check_determinism;
  // Out-of-process collection: workers re-exec this binary and _exit inside
  // run_grid, so they never reach the k-FP evaluation stage below.
  run.proc = exp::proc_options_from_cli(cli);
  exp::ProcReport proc_report;
  run.proc_report = &proc_report;
  const exp::CacheSession cache = exp::CacheSession::from_cli(cli);
  run.cache = cache.cache();
  const std::vector<exp::JobResult> results = [&] {
    obs::ProfSpan span("collect");
    return exp::run_grid(grid, run);
  }();
  if (run.proc.workers > 0) {
    exp::print_proc_summary("table1_defenses", run.proc, proc_report);
  }
  if (cli.check_determinism && cache.cache() != nullptr) {
    const int rc = verify_warm_manifest(grid, run, cache.cache(), jobs, seed);
    if (rc != 0) return rc;
  }
  cache.finish("table1_defenses");

  // Partition the job-ordered results into one dataset per (CCA, fault)
  // condition; job order makes each partition deterministic at any --jobs.
  std::vector<wf::Dataset> conditions(C * F);
  for (const exp::JobResult& r : results) {
    conditions[r.spec.cca * F + r.spec.fault].add(r.trace, static_cast<int>(r.spec.site));
  }
  for (wf::Dataset& d : conditions) d = d.sanitized_by_download_size(0.75);

  wf::KFingerprint::Config kfp_cfg;
  kfp_cfg.forest.num_trees = trees;

  const std::vector<std::unique_ptr<defenses::TraceDefense>> zoo = defenses::all_defenses();
  const std::size_t D = zoo.size() + 1;  // index 0 = undefended
  const std::vector<ParetoCell> cells = [&] {
    obs::ProfSpan span("evaluate");
    return exp::run_ordered<ParetoCell>(D * C * F, jobs, [&](std::size_t i) {
      const std::size_t f = i % F;
      const std::size_t c = (i / F) % C;
      const std::size_t d = i / (F * C);
      const wf::Dataset& base = conditions[c * F + f];
      ParetoCell cell;
      cell.cca = ccas[c];
      cell.fault = faults[f].name;
      if (d == 0) {
        cell.defense = "(none)";
        cell.eval = wf::cross_validate(base, kfp_cfg, folds, exp::job_seed(seed, i));
        return cell;
      }
      const defenses::TraceDefense& defense = *zoo[d - 1];
      cell.defense = defense.name();
      cell.target = defense.target();
      cell.strategy = defense.strategy();
      cell.manipulation = defense.manipulations().describe();
      Rng rng(exp::job_seed(seed ^ 0xD3F3ull, i));
      cell.overhead = defenses::measure_overhead(base, defense, rng);
      Rng rng2(exp::job_seed(seed ^ 0xD3F3ull, i));
      const wf::Dataset defended =
          base.transformed([&](const wf::Trace& t) { return defense.apply(t, rng2); });
      cell.eval = wf::cross_validate(defended, kfp_cfg, folds, exp::job_seed(seed, i));
      return cell;
    });
  }();

  // CSV: one row per (defense, CCA, fault) cell.
  std::vector<csv::Row> rows;
  rows.push_back({"defense", "target", "strategy", "manipulation", "cca", "fault",
                  "bw_overhead", "lat_overhead", "kfp_accuracy", "kfp_std"});
  for (const ParetoCell& cell : cells) {
    rows.push_back({cell.defense, cell.target, cell.strategy, cell.manipulation, cell.cca,
                    cell.fault, fmt(cell.overhead.bandwidth), fmt(cell.overhead.latency),
                    fmt(cell.eval.mean_accuracy), fmt(cell.eval.std_accuracy)});
  }
  const std::string csv_path = cli.get("--pareto");
  csv::write_file(csv_path, rows);
  std::fprintf(stderr, "table1_defenses: wrote %s (%zu cells)\n", csv_path.c_str(),
               cells.size());

  // Per-defense aggregate across conditions, with the Pareto front over
  // (bandwidth overhead, residual accuracy) marked — both minimised.
  struct Agg {
    std::string name;
    double bw = 0.0, lat = 0.0, acc = 0.0;
    bool front = false;
  };
  std::vector<Agg> aggs(D);
  for (std::size_t d = 0; d < D; ++d) {
    aggs[d].name = d == 0 ? "(none)" : zoo[d - 1]->name();
    for (std::size_t cf = 0; cf < C * F; ++cf) {
      const ParetoCell& cell = cells[d * C * F + cf];
      aggs[d].bw += cell.overhead.bandwidth;
      aggs[d].lat += cell.overhead.latency;
      aggs[d].acc += cell.eval.mean_accuracy;
    }
    aggs[d].bw /= static_cast<double>(C * F);
    aggs[d].lat /= static_cast<double>(C * F);
    aggs[d].acc /= static_cast<double>(C * F);
  }
  for (Agg& a : aggs) {
    a.front = true;
    for (const Agg& b : aggs) {
      const bool no_worse = b.bw <= a.bw && b.acc <= a.acc;
      const bool better = b.bw < a.bw || b.acc < a.acc;
      if (no_worse && better) {
        a.front = false;
        break;
      }
    }
  }

  std::printf("%-12s %9s %9s %10s %7s\n", "Defense", "BW-ovh", "Lat-ovh", "kFP-acc",
              "front");
  for (const Agg& a : aggs) {
    std::printf("%-12s %8.1f%% %8.1f%% %10.3f %7s\n", a.name.c_str(), a.bw * 100.0,
                a.lat * 100.0, a.acc, a.front ? "*" : "");
  }
  std::printf("\nFull per-cell data (defense x CCA x fault) in %s.\n", csv_path.c_str());

  if (cli.profile()) {
    prof_guard.reset();
    if (!cli.manifest_path.empty()) {
      obs::RunManifest m = obs::build_manifest("table1_defenses", prof, nullptr, jobs, seed);
      m.set_config("mode", smoke ? "pareto-smoke" : "pareto");
      m.set_config("samples", std::to_string(samples));
      m.set_config("trees", std::to_string(trees));
      m.set_config("folds", std::to_string(folds));
      m.set_config("defenses", std::to_string(D));
      m.set_config("ccas", std::to_string(C));
      m.set_config("faults", std::to_string(F));
      m.set_config("pareto_csv", csv_path);
      m.write(cli.manifest_path);
      std::fprintf(stderr, "table1_defenses: wrote %s\n", cli.manifest_path.c_str());
    }
    if (!cli.trace_events_path.empty()) {
      obs::write_trace_event(cli.trace_events_path, prof.records(), "table1_defenses");
      std::fprintf(stderr, "table1_defenses: wrote %s\n", cli.trace_events_path.c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto samples = static_cast<std::size_t>(env_int("STOB_SAMPLES", 24));
  const auto trees = static_cast<std::size_t>(env_int("STOB_TREES", 60));
  const auto folds = static_cast<std::size_t>(env_int("STOB_FOLDS", 3));
  const auto seed = static_cast<std::uint64_t>(env_int("STOB_SEED", 20251117));
  const exp::Cli cli =
      exp::parse_cli(argc, argv, {{"--pareto", true}, {"--smoke", false}});
  const std::size_t jobs = cli.jobs == 0 ? exp::default_jobs() : cli.jobs;

  if (cli.has("--pareto")) return run_pareto(cli, samples, trees, folds, seed, jobs);

  obs::Profiler prof;
  std::optional<obs::ScopedProfiler> prof_guard;
  if (cli.profile()) prof_guard.emplace(prof);

  std::printf("=== Table 1: WF defense summary with measured overheads ===\n");
  // Worker count goes to stderr: stdout must be byte-identical for any
  // --jobs value (the determinism contract the engine provides).
  std::fprintf(stderr, "table1_defenses: running with %zu jobs\n", jobs);
  std::printf("dataset: 9 simulated sites x %zu samples; k-FP %zu trees, %zu folds\n\n",
              samples, trees, folds);

  exp::ExperimentGrid grid;
  grid.sites = workload::nine_sites();
  grid.samples = samples;
  grid.base_seed = seed;
  exp::RunOptions run;
  run.jobs = jobs;
  run.check_determinism = cli.check_determinism;
  run.proc = exp::proc_options_from_cli(cli);
  exp::ProcReport proc_report;
  run.proc_report = &proc_report;
  const exp::CacheSession cache = exp::CacheSession::from_cli(cli);
  run.cache = cache.cache();
  const wf::Dataset data = [&] {
    obs::ProfSpan span("collect");
    return exp::to_dataset(exp::run_grid(grid, run)).sanitized_by_download_size(0.75);
  }();
  if (run.proc.workers > 0) {
    exp::print_proc_summary("table1_defenses", run.proc, proc_report);
  }
  if (cli.check_determinism && cache.cache() != nullptr) {
    const int rc = verify_warm_manifest(grid, run, cache.cache(), jobs, seed);
    if (rc != 0) return rc;
  }
  cache.finish("table1_defenses");

  wf::KFingerprint::Config kfp_cfg;
  kfp_cfg.forest.num_trees = trees;

  // One evaluation job per defense (index 0 = undefended baseline); each is
  // seeded exactly as the serial loop was, so the numbers match any --jobs.
  const std::vector<std::unique_ptr<defenses::TraceDefense>> all = defenses::all_defenses();
  const std::vector<DefenseRow> rows = [&] {
    obs::ProfSpan span("evaluate");
    return exp::run_ordered<DefenseRow>(
      all.size() + 1, jobs, [&](std::size_t i) {
        DefenseRow row;
        if (i == 0) {
          row.name = "(none)";
          row.eval = wf::cross_validate(data, kfp_cfg, folds, seed);
          return row;
        }
        const defenses::TraceDefense& defense = *all[i - 1];
        row.name = defense.name();
        row.target = defense.target();
        row.strategy = defense.strategy();
        row.manipulation = defense.manipulations().describe();
        Rng rng(seed ^ 0xD3F3ull);
        row.overhead = defenses::measure_overhead(data, defense, rng);
        Rng rng2(seed ^ 0xD3F3ull);
        const wf::Dataset defended =
            data.transformed([&](const wf::Trace& t) { return defense.apply(t, rng2); });
        row.eval = wf::cross_validate(defended, kfp_cfg, folds, seed);
        return row;
      });
  }();

  std::printf("%-12s %-6s %-15s %-24s %9s %9s %10s\n", "Defense", "Target", "Strategy",
              "Manipulation", "BW-ovh", "Lat-ovh", "kFP-acc");
  std::printf("%-12s %-6s %-15s %-24s %9s %9s %9.3f\n", "(none)", "-", "-", "-", "-", "-",
              rows[0].eval.mean_accuracy);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const DefenseRow& row = rows[i];
    std::printf("%-12s %-6s %-15s %-24s %8.1f%% %8.1f%% %9.3f\n", row.name.c_str(),
                row.target.c_str(), row.strategy.c_str(), row.manipulation.c_str(),
                row.overhead.bandwidth * 100.0, row.overhead.latency * 100.0,
                row.eval.mean_accuracy);
  }

  std::printf("\nReference points from the literature: FRONT ~80%% bandwidth overhead,\n");
  std::printf("QCSD-style padding ~309%%; timing-only defenses cost 0%% bandwidth (the\n");
  std::printf("paper's case for stack-level timing/sizing control instead of padding).\n");

  if (cli.profile()) {
    prof_guard.reset();  // all spans closed; stop recording before export
    if (!cli.manifest_path.empty()) {
      obs::RunManifest m = obs::build_manifest("table1_defenses", prof, nullptr, jobs, seed);
      m.set_config("samples", std::to_string(samples));
      m.set_config("trees", std::to_string(trees));
      m.set_config("folds", std::to_string(folds));
      m.set_config("defenses", std::to_string(all.size() + 1));
      m.write(cli.manifest_path);
      std::fprintf(stderr, "table1_defenses: wrote %s\n", cli.manifest_path.c_str());
    }
    if (!cli.trace_events_path.empty()) {
      obs::write_trace_event(cli.trace_events_path, prof.records(), "table1_defenses");
      std::fprintf(stderr, "table1_defenses: wrote %s\n", cli.trace_events_path.c_str());
    }
  }
  return 0;
}
