// Attack robustness check: are the Table 2 conclusions k-FP-specific?
//
// Runs three attacks on the same datasets — k-FP with forest voting (the
// paper's configuration), k-FP in its original leaf-vector k-NN mode, and
// CUMUL (cumulative-size curve + k-NN, Panchenko et al.) — over the four
// countermeasure variants, whole traces and the N=30 censorship prefix.
// If the countermeasures' effect holds across attack families, the paper's
// argument is about the *traffic*, not one classifier.
//
// Environment knobs: STOB_SAMPLES (default 40), STOB_TREES (default 80),
// STOB_FOLDS (default 5), STOB_SEED.
#include <cstdio>
#include <cstdlib>

#include "defenses/trace_defense.hpp"
#include "wf/cumul.hpp"
#include "wf/kfp.hpp"
#include "workload/page_load.hpp"

namespace {

using namespace stob;

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoll(v) : fallback;
}

}  // namespace

int main() {
  const auto samples = static_cast<std::size_t>(env_int("STOB_SAMPLES", 40));
  const auto trees = static_cast<std::size_t>(env_int("STOB_TREES", 80));
  const auto folds = static_cast<std::size_t>(env_int("STOB_FOLDS", 5));
  const auto seed = static_cast<std::uint64_t>(env_int("STOB_SEED", 20251117));

  std::printf("=== Attack comparison: k-FP (forest), k-FP (k-NN), CUMUL (k-NN) ===\n");
  std::printf("9 simulated sites x %zu samples, %zu folds\n\n", samples, folds);

  workload::PageLoadOptions options;
  const wf::Dataset data =
      workload::collect_dataset(workload::nine_sites(), samples, seed, options)
          .sanitized_by_download_size(0.75);

  defenses::SplitDefense split;
  defenses::DelayDefense delay;
  defenses::CombinedDefense combined;
  struct Variant {
    const char* name;
    const defenses::TraceDefense* defense;
  };
  const Variant variants[] = {
      {"Original", nullptr}, {"Split", &split}, {"Delayed", &delay}, {"Combined", &combined}};

  wf::KFingerprint::Config forest_cfg;
  forest_cfg.forest.num_trees = trees;
  wf::KFingerprint::Config knn_cfg = forest_cfg;
  knn_cfg.use_knn = true;
  knn_cfg.k_neighbors = 3;

  for (std::size_t scope : {std::size_t{30}, std::size_t{0}}) {
    std::printf("--- %s ---\n", scope == 0 ? "whole traces" : "first 30 packets (censor view)");
    std::printf("%-10s %14s %14s %14s\n", "dataset", "kFP-forest", "kFP-kNN", "CUMUL-kNN");
    for (const Variant& v : variants) {
      Rng rng(seed ^ 0xA77ull);
      const wf::Dataset defended = data.transformed([&](const wf::Trace& t) {
        wf::Trace out =
            v.defense != nullptr ? defenses::apply_to_prefix(*v.defense, t, scope, rng) : t;
        return scope == 0 ? out : out.truncated(scope);
      });
      const double forest = wf::cross_validate(defended, forest_cfg, folds, seed).mean_accuracy;
      const double kfp_knn = wf::cross_validate(defended, knn_cfg, folds, seed).mean_accuracy;
      const double cumul = wf::cumul_cross_validate(defended, 5, 100, folds, seed).mean_accuracy;
      std::printf("%-10s %14.3f %14.3f %14.3f\n", v.name, forest, kfp_knn, cumul);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
