# Empty dependencies file for test_stack.
# This may be replaced when dependencies are built.
