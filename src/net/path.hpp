// A duplex network path between two endpoints: one pipe per direction.
// Models a client <-> server Internet path with a bottleneck rate, a
// propagation delay (so RTT = 2 * delay + serialisation) and a drop-tail
// bottleneck buffer in each direction.
#pragma once

#include <memory>

#include "net/pipe.hpp"
#include "sim/simulator.hpp"

namespace stob::net {

enum class Direction : std::uint8_t {
  ClientToServer,  // "outgoing" from the WF client's point of view
  ServerToClient,  // "incoming"
};

inline const char* to_string(Direction d) {
  return d == Direction::ClientToServer ? "out" : "in";
}

class DuplexPath {
 public:
  struct Config {
    Pipe::Config forward;   // client -> server
    Pipe::Config backward;  // server -> client
  };

  /// Symmetric path helper.
  static Config symmetric(DataRate rate, Duration one_way_delay,
                          Bytes queue_capacity = Bytes::kibi(256), double loss_rate = 0.0) {
    Pipe::Config p{rate, one_way_delay, queue_capacity, loss_rate};
    return Config{p, p};
  }

  /// Asymmetric path helper: distinct uplink (client->server) and downlink
  /// (server->client) rates/delays, the common shape of access networks
  /// (DOCSIS/DSL/LTE) where the request direction is much thinner than the
  /// response direction.
  static Config asymmetric(DataRate up_rate, Duration up_delay, DataRate down_rate,
                           Duration down_delay, Bytes queue_capacity = Bytes::kibi(256),
                           double up_loss = 0.0, double down_loss = 0.0) {
    return Config{Pipe::Config{up_rate, up_delay, queue_capacity, up_loss},
                  Pipe::Config{down_rate, down_delay, queue_capacity, down_loss}};
  }

  DuplexPath(sim::Simulator& sim, Config cfg)
      : forward_(sim, cfg.forward), backward_(sim, cfg.backward) {}

  Pipe& forward() { return forward_; }
  Pipe& backward() { return backward_; }

  Pipe& pipe(Direction d) { return d == Direction::ClientToServer ? forward_ : backward_; }

  /// Base RTT excluding serialisation and queueing.
  Duration base_rtt() const {
    return forward_.config().delay + backward_.config().delay;
  }

 private:
  Pipe forward_;
  Pipe backward_;
};

}  // namespace stob::net
