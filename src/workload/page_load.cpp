#include "workload/page_load.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace stob::workload {

namespace {

constexpr net::Port kHttpsPort = 443;

/// One request/response exchange on a connection.
struct Fetch {
  std::int64_t request = 0;
  std::int64_t response = 0;
  /// Pre-TLS-framing sizes; the response is sealed server-side at actual
  /// send time so TLS record events carry honest timestamps.
  std::int64_t raw_response = 0;
  Duration think;
  bool is_object = false;
};

class Driver {
 public:
  Driver(const SiteProfile& profile, Rng& rng, const PageLoadOptions& options)
      : rng_(rng), options_(options), plan_(sample_page(profile, rng)) {
    // Per-sample network conditions (load variability / route jitter).
    const double rate_mult = rng_.lognormal(0.0, options.rate_sigma);
    const double delay_mult = rng_.uniform(1.0 - options.delay_jitter, 1.0 + options.delay_jitter);
    stack::HostPair::Config hp_cfg;
    hp_cfg.path = net::DuplexPath::symmetric(
        DataRate(static_cast<std::int64_t>(
            static_cast<double>(profile.access_rate.bits_per_sec()) * rate_mult)),
        profile.base_one_way_delay * delay_mult, Bytes::kibi(384));
    hp_ = std::make_unique<stack::HostPair>(hp_cfg);
    if (options.path_faults.any()) {
      // Forked so the page-load sampling stream stays identical whether or
      // not faults are enabled (clean runs are byte-for-byte unchanged).
      faults_ = std::make_unique<fault::PathFaults>(hp_->sim(), hp_->path(),
                                                    options.path_faults, rng_.fork());
    }
    recorder_ = std::make_unique<wf::TraceRecorder>(hp_->path());

    tcp::TcpConnection::Config server_cfg = options_.server_conn;
    if (server_cfg.initial_cwnd_segments == 0) {
      server_cfg.initial_cwnd_segments = profile.server_initial_cwnd;
    }
    listener_ = std::make_unique<tcp::TcpListener>(hp_->server(), kHttpsPort, server_cfg);
    listener_->set_accept_callback([this](tcp::TcpConnection& c) {
      ServerScript& script = scripts_[c.key().reversed()];
      script.conn = &c;
      if (options_.tls_records) {
        script.tls = std::make_unique<stack::TlsSession>(options_.tls);
        script.tls->set_flow(c.key());
      }
      c.on_data = [this, &script](Bytes n) {
        open_client_records(script, n);
        script.buffered += n.count();
        pump_server(script);
      };
      c.on_peer_closed = [&c] { c.close(); };
    });

    for (std::size_t i = 0; i < plan_.object_bytes.size(); ++i) pending_objects_.push_back(i);
  }

  PageLoadResult run() {
    open_client_slot(0);
    hp_->run(TimePoint::zero() + options_.timeout);

    PageLoadResult result;
    result.trace = recorder_->take();
    result.page_load_time = done_at_ - TimePoint::zero();
    result.objects_fetched = objects_fetched_;
    result.response_bytes = plan_.html_bytes;
    for (std::size_t i = 0; i < plan_.object_bytes.size(); ++i) {
      result.response_bytes += plan_.object_bytes[i];
    }
    result.completed = html_done_ && objects_fetched_ == plan_.object_bytes.size();
    result.sim_events = hp_->sim().executed();
    // All scraped values (events, heap high-water) are deterministic for a
    // deterministic load, so this is safe under per-job registries that the
    // engine's determinism checks compare byte-for-byte.
    if (obs::MetricsRegistry* m = obs::metrics()) obs::scrape_simulator(hp_->sim(), *m);
    return result;
  }

 private:
  struct ClientSlot {
    std::unique_ptr<tcp::TcpConnection> conn;
    /// Client-to-server record layer (present when options.tls_records):
    /// the client seals requests, the server opens them.
    std::unique_ptr<stack::TlsSession> tls;
    std::int64_t awaiting = 0;
    Fetch current;
    bool ready = false;  // TLS exchange finished, can carry requests
  };

  struct ServerScript {
    tcp::TcpConnection* conn = nullptr;
    /// Server-to-client record layer: the server seals responses at send
    /// time, the client opens them on arrival.
    std::unique_ptr<stack::TlsSession> tls;
    std::deque<Fetch> queue;
    std::int64_t buffered = 0;
    bool busy = false;  // a think/response is in progress
  };

  void open_client_slot(std::size_t i) {
    if (i >= slots_.size()) slots_.resize(i + 1);
    ClientSlot& slot = slots_[i];
    slot.conn = std::make_unique<tcp::TcpConnection>(hp_->client(), options_.client_conn);
    tcp::TcpConnection& conn = *slot.conn;
    conn.on_connected = [this, i] { on_client_connected(i); };
    conn.on_data = [this, i](Bytes n) { on_client_data(i, n); };
    conn.connect(hp_->server().id(), kHttpsPort);
    if (options_.tls_records) {
      slot.tls = std::make_unique<stack::TlsSession>(options_.tls);
      slot.tls->set_flow(conn.key());
    }
  }

  /// Feed request ciphertext arriving at the server into the client's
  /// sealing session, completing its records (observability only; sizes are
  /// handled by the out-of-band script).
  void open_client_records(ServerScript& script, Bytes n) {
    if (!options_.tls_records || script.conn == nullptr) return;
    const net::FlowKey client_key = script.conn->key().reversed();
    for (ClientSlot& slot : slots_) {
      if (slot.tls && slot.conn && slot.conn->key() == client_key) {
        slot.tls->open(n.count(), hp_->sim().now());
        return;
      }
    }
  }

  void on_client_connected(std::size_t i) {
    // TLS handshake emulation: ClientHello-sized request, certificate+
    // ServerHello-sized response (site-specific chain), short think time.
    Fetch tls;
    tls.request = 517;
    tls.response = plan_.tls_response_bytes;
    tls.think = Duration::micros(static_cast<std::int64_t>(rng_.uniform(300.0, 900.0)));
    send_fetch(i, tls);
  }

  void on_client_data(std::size_t i, Bytes n) {
    ClientSlot& slot = slots_[i];
    if (options_.tls_records) {
      auto it = scripts_.find(slot.conn->key());
      if (it != scripts_.end() && it->second.tls) {
        it->second.tls->open(n.count(), hp_->sim().now());
      }
    }
    slot.awaiting -= n.count();
    if (slot.awaiting > 0) return;

    // Current exchange finished.
    if (!slot.ready) {
      slot.ready = true;  // TLS done
    } else if (slot.current.is_object) {
      ++objects_fetched_;
    } else {
      // HTML arrived: open the remaining parallel connections.
      html_done_ = true;
      for (int c = 1; c < plan_.parallel_connections; ++c) {
        open_client_slot(static_cast<std::size_t>(c));
      }
    }
    dispatch(i);
    check_done();
  }

  /// Give the next piece of work to slot i.
  void dispatch(std::size_t i) {
    ClientSlot& slot = slots_[i];
    if (!slot.ready) return;
    if (i == 0 && !html_requested_) {
      html_requested_ = true;
      Fetch html;
      html.request = plan_.html_request_bytes;
      html.response = plan_.html_bytes;
      html.think = plan_.html_think;
      send_fetch(i, html);
      return;
    }
    if (!html_done_ || pending_objects_.empty()) {
      return;  // nothing to do yet (or page finished)
    }
    const std::size_t obj = pending_objects_.front();
    pending_objects_.pop_front();
    Fetch fetch;
    fetch.request = plan_.request_bytes[obj];
    fetch.response = plan_.object_bytes[obj];
    fetch.think = plan_.think_times[obj];
    fetch.is_object = true;
    send_fetch(i, fetch);
  }

  void send_fetch(std::size_t i, Fetch fetch) {
    ClientSlot& slot = slots_[i];
    if (options_.tls_records) {
      // Both directions travel as TLS records: sizes grow by the framing
      // overhead and any record-padding policy. The request is sealed now
      // (it goes out now); the response is sealed by the server session at
      // response time, on the same size schedule.
      fetch.raw_response = fetch.response;
      fetch.request = slot.tls ? slot.tls->seal(fetch.request, hp_->sim().now())
                               : stack::tls_sealed_size(fetch.request, options_.tls);
      fetch.response = stack::tls_sealed_size(fetch.response, options_.tls);
    }
    slot.current = fetch;
    slot.awaiting = fetch.response;
    scripts_[slot.conn->key()].queue.push_back(fetch);
    slot.conn->send(Bytes(fetch.request));
    // The server may already have buffered bytes (reordered registration).
    auto it = scripts_.find(slot.conn->key());
    if (it != scripts_.end() && it->second.conn != nullptr) pump_server(it->second);
  }

  void pump_server(ServerScript& script) {
    if (script.busy || script.conn == nullptr) return;
    if (script.queue.empty() || script.buffered < script.queue.front().request) return;
    const Fetch fetch = script.queue.front();
    script.queue.pop_front();
    script.buffered -= fetch.request;
    script.busy = true;
    hp_->sim().schedule_after(fetch.think, [this, &script, fetch] {
      script.busy = false;
      if (script.conn != nullptr) {
        std::int64_t wire = fetch.response;
        if (script.tls) {
          // Seal at actual send time; sizes match the pre-computed schedule.
          wire = script.tls->seal(fetch.raw_response, hp_->sim().now());
        }
        script.conn->send(Bytes(wire));
      }
      pump_server(script);
    });
  }

  void check_done() {
    if (done_ || !html_done_ || objects_fetched_ < plan_.object_bytes.size()) return;
    done_ = true;
    done_at_ = hp_->sim().now();
    for (ClientSlot& slot : slots_) {
      if (slot.conn) slot.conn->close();
    }
  }

  Rng& rng_;
  const PageLoadOptions& options_;
  PagePlan plan_;
  std::unique_ptr<stack::HostPair> hp_;
  // Declared after hp_ so injectors detach from the pipes before they die.
  std::unique_ptr<fault::PathFaults> faults_;
  std::unique_ptr<wf::TraceRecorder> recorder_;
  std::unique_ptr<tcp::TcpListener> listener_;
  std::vector<ClientSlot> slots_;
  std::unordered_map<net::FlowKey, ServerScript, net::FlowKeyHash> scripts_;
  std::deque<std::size_t> pending_objects_;
  bool html_requested_ = false;
  bool html_done_ = false;
  bool done_ = false;
  TimePoint done_at_;
  std::size_t objects_fetched_ = 0;
};

}  // namespace

PageLoadResult run_page_load(const SiteProfile& profile, Rng& rng,
                             const PageLoadOptions& options) {
  Driver driver(profile, rng, options);
  return driver.run();
}

wf::Dataset collect_dataset(const std::vector<SiteProfile>& sites, std::size_t samples,
                            std::uint64_t seed, const PageLoadOptions& options) {
  wf::Dataset data;
  Rng rng(seed);
  for (std::size_t s = 0; s < sites.size(); ++s) {
    for (std::size_t i = 0; i < samples; ++i) {
      Rng sample_rng = rng.fork();
      PageLoadResult result = run_page_load(sites[s], sample_rng, options);
      if (!result.completed) {
        STOB_WARN("workload") << sites[s].name << " sample " << i << " incomplete ("
                              << result.objects_fetched << " objects)";
      }
      data.add(std::move(result.trace), static_cast<int>(s));
    }
  }
  return data;
}

}  // namespace stob::workload
