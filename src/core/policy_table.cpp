#include "core/policy_table.hpp"

namespace stob::core {

Policy* PolicyTable::lookup(const net::FlowKey& flow) const {
  if (auto it = by_flow_.find(flow); it != by_flow_.end()) return it->second.get();
  if (auto it = by_destination_.find(flow.dst_host); it != by_destination_.end()) {
    return it->second.get();
  }
  return default_.get();
}

}  // namespace stob::core
