// Streaming on-disk trace corpus and memory-mapped feature store — the
// storage layer behind million-trace open-world evaluation.
//
// Two versioned little-endian binary formats, both golden-pinned by tests
// (headers carry no timestamps, so the same input always produces the same
// bytes, sha256 included):
//
//   "STOBCRP1" trace corpus — 96-byte header
//       magic[8] | u32 version | u32 reserved | u64 trace_count |
//       u64 payload_bytes | char sha256_hex[64]
//     followed by trace_count records:
//       u32 label | u32 packet_count | packet_count x
//         { f64 time | i32 direction | i32 pad(=0) | i64 size }   (24 B)
//
//   "STOBFST1" feature store — 128-byte header
//       magic[8] | u32 version | u32 reserved | u64 rows | u64 cols |
//       u64 row_stride | u64 labels_offset | u64 data_offset |
//       u64 payload_bytes | char sha256_hex[64]
//     data_offset = 128 (64-byte aligned by construction), row_stride is
//     cols rounded up to 8 doubles, so every mmap'd row is 64-byte aligned
//     exactly like FeatureMatrix rows; the i32 label array follows the row
//     data at labels_offset. The sha256 covers the whole payload
//     (everything after the header) in file order.
//
// FeatureStore mmaps the file read-only and validates everything on open —
// magic, version, header arithmetic, exact file size, payload sha256 — so
// consumers can iterate blocks of rows without materialising the corpus in
// RAM. The sha pass streams with progressive madvise(MADV_DONTNEED), so
// even verification keeps resident memory bounded. A file that fails an
// integrity check (magic/version/size/sha) is quarantined (renamed to
// <path>.quarantined) and never served; a DimMismatch — a structurally
// valid file whose cols differ from what this consumer expects — throws
// without renaming, leaving the file usable for other consumers. Every
// failure is a structured CorpusError, never UB, and a rejected open
// unmaps before throwing.
#pragma once

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "util/sha256.hpp"
#include "wf/trace.hpp"

namespace stob::wf {

enum class CorpusErrorCode {
  Io,           ///< open/read/map/write syscall failure
  BadMagic,     ///< not a corpus/store file
  BadVersion,   ///< format version this build does not speak
  BadHeader,    ///< header fields inconsistent (offsets, stride, arithmetic)
  Truncated,    ///< file shorter than the header promises
  DimMismatch,  ///< store cols differ from what the consumer expects
  ShaMismatch,  ///< payload bytes do not hash to the header sha256
  Empty,        ///< zero rows/traces (never valid for a finished file)
  Modified,     ///< mapped header changed after open (file mutated in place)
};

const char* corpus_error_name(CorpusErrorCode code);

/// Structured failure for every corpus/store fault path.
class CorpusError : public std::runtime_error {
 public:
  CorpusError(CorpusErrorCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}
  CorpusErrorCode code() const { return code_; }

 private:
  CorpusErrorCode code_;
};

// ------------------------------------------------------------ trace corpus

/// Appends labeled traces to a STOBCRP1 file. Records stream straight to
/// disk (constant memory in corpus size); the header is finalised by
/// finish(), without which the file stays invalid (trace_count = 0 is
/// rejected by the reader, so a crashed writer cannot be mistaken for a
/// complete corpus).
class CorpusWriter {
 public:
  explicit CorpusWriter(const std::filesystem::path& path);
  ~CorpusWriter();
  CorpusWriter(const CorpusWriter&) = delete;
  CorpusWriter& operator=(const CorpusWriter&) = delete;

  void add(const Trace& trace, int label);
  /// Seal the file: write the final header (count, payload size, sha256).
  void finish();

  std::uint64_t trace_count() const { return count_; }

 private:
  void write_raw(const void* p, std::size_t n);

  std::FILE* f_ = nullptr;
  std::filesystem::path path_;
  util::Sha256 sha_;
  std::uint64_t count_ = 0;
  std::uint64_t payload_bytes_ = 0;
  bool finished_ = false;
};

/// Sequentially decodes a STOBCRP1 file. The whole file is validated on
/// construction (header + payload sha); iteration itself cannot fail.
class CorpusReader {
 public:
  explicit CorpusReader(const std::filesystem::path& path);
  ~CorpusReader();
  CorpusReader(const CorpusReader&) = delete;
  CorpusReader& operator=(const CorpusReader&) = delete;

  std::uint64_t trace_count() const { return count_; }

  /// Decode the next trace; false once all records were consumed.
  bool next(Trace& trace, int& label);

  /// Restart iteration from the first record.
  void rewind();

 private:
  const unsigned char* map_ = nullptr;
  std::size_t map_size_ = 0;
  std::uint64_t count_ = 0;
  std::uint64_t read_ = 0;
  std::size_t cursor_ = 0;
};

/// Convenience: decode a whole (small) corpus into a Dataset.
Dataset load_corpus(const std::filesystem::path& path);

// ---------------------------------------------------------- feature store

/// Streams 64-byte-aligned feature rows (padded to a multiple of 8 doubles,
/// FeatureMatrix layout) plus i32 labels into a STOBFST1 file. Row data is
/// written as it arrives; labels are buffered (4 bytes/row) and flushed by
/// finish(), which also seals the header.
class FeatureStoreWriter {
 public:
  FeatureStoreWriter(const std::filesystem::path& path, std::size_t cols);
  ~FeatureStoreWriter();
  FeatureStoreWriter(const FeatureStoreWriter&) = delete;
  FeatureStoreWriter& operator=(const FeatureStoreWriter&) = delete;

  std::size_t cols() const { return cols_; }
  std::size_t row_stride() const { return stride_; }
  std::uint64_t rows() const { return rows_; }

  /// Append one row (exactly cols() values; padding lanes are zero).
  void append_row(std::span<const double> row, int label);
  void finish();

 private:
  void write_raw(const void* p, std::size_t n);

  std::FILE* f_ = nullptr;
  std::filesystem::path path_;
  util::Sha256 sha_;
  std::size_t cols_ = 0;
  std::size_t stride_ = 0;
  std::uint64_t rows_ = 0;
  std::vector<std::int32_t> labels_;
  std::vector<double> row_buf_;
  bool finished_ = false;
};

/// Read-only mmap view of a STOBFST1 file. Open validates the header and
/// the payload sha256 (streamed, bounded RSS); afterwards row(r) / block()
/// hand out pointers directly into the mapping, so iterating the store
/// costs page-cache pages only — drop_pages() returns them to the kernel
/// between blocks.
class FeatureStore {
 public:
  /// Validates and maps; throws CorpusError on any fault, quarantining the
  /// file on integrity failures. expected_cols != 0 additionally enforces
  /// the feature dimensionality (DimMismatch, thrown without quarantine).
  explicit FeatureStore(const std::filesystem::path& path, std::size_t expected_cols = 0);
  ~FeatureStore();
  FeatureStore(const FeatureStore&) = delete;
  FeatureStore& operator=(const FeatureStore&) = delete;

  std::uint64_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t row_stride() const { return stride_; }

  /// Row r (cols() valid doubles, row_stride() apart, 64-byte aligned).
  const double* row(std::uint64_t r) const { return data_ + r * stride_; }
  std::int32_t label(std::uint64_t r) const { return labels_[r]; }
  const std::int32_t* labels() const { return labels_; }

  /// Start of a block of `n` rows at `lo`, after re-checking that the
  /// mapped header still matches what open() validated (throws Modified if
  /// the file was rewritten in place behind the mapping).
  const double* block(std::uint64_t lo, std::uint64_t n) const;

  /// Re-hash the payload and compare against the header (throws ShaMismatch
  /// / Modified on divergence). Bounded RSS like open().
  void verify_payload() const;

  /// Advise the kernel to drop the payload's resident pages (between
  /// blocks of a streaming pass).
  void drop_pages() const;

  /// Drop only the pages backing rows [lo, lo+n) — the per-worker variant
  /// for parallel streaming (page range is shrunk inward, so neighbouring
  /// blocks being read by other workers are never evicted).
  void drop_rows(std::uint64_t lo, std::uint64_t n) const;

  /// Bytes of the payload currently resident in memory (via mincore) —
  /// lets tests assert that streaming passes stay bounded.
  std::size_t resident_payload_bytes() const;

 private:
  const unsigned char* map_ = nullptr;
  std::size_t map_size_ = 0;
  const double* data_ = nullptr;
  const std::int32_t* labels_ = nullptr;
  std::uint64_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t stride_ = 0;
  unsigned char header_copy_[128] = {};
};

}  // namespace stob::wf
