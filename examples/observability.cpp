// Observability tour: produce a per-layer enforcement-gap report for one
// defended page load.
//
//  1. Install a TraceRecorder (flight recorder of every layer crossing) and
//     a MetricsRegistry (stack-wide counters/gauges/distributions).
//  2. Run a page load with a server-side split+delay Stob policy and TLS
//     record padding — a defended flow.
//  3. Pick the busiest flow of the capture, align its TLS -> TCP -> qdisc ->
//     NIC -> wire sequences, and emit the layer-diff report: how much each
//     layer distorted the sequence above it (the paper's enforcement gap).
//
//  4. Re-run the same page load under the span profiler (obs::ProfSpan):
//     phase wall/CPU timings, a run manifest, and a Chrome trace_event
//     timeline loadable in Perfetto / chrome://tracing.
//
// Build & run:   ./build/examples/observability
// Artifacts:     observability_events.jsonl (full event trace)
//                observability_report.csv   (per-layer gap report)
//                observability_manifest.json (run manifest)
//                observability_trace.json    (trace_event timeline)
#include <cstdio>

#include "core/policies.hpp"
#include "obs/layer_diff.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "obs/trace_recorder.hpp"
#include "workload/page_load.hpp"
#include "workload/website.hpp"

using namespace stob;

int main() {
  // --- 1. Observability on ------------------------------------------------
  obs::TraceRecorder recorder(1 << 18);
  obs::MetricsRegistry metrics;
  obs::ScopedRecorder rec_guard(recorder);
  obs::ScopedMetrics met_guard(metrics);

  // --- 2. One defended page load ------------------------------------------
  core::SplitPolicy split;  // halve wire packets over 1200 B
  core::DelayPolicy delay;  // inflate departure gaps by 10-30%
  core::CompositePolicy combined({&split, &delay});

  workload::PageLoadOptions opt;
  opt.server_conn.policy = &combined;
  opt.tls_records = true;
  opt.tls.pad_to = 512;  // RFC 8446 record padding

  Rng rng(42);
  const auto& site = workload::nine_sites()[0];
  const workload::PageLoadResult res = workload::run_page_load(site, rng, opt);
  std::printf("page load of %s: %s in %.1f ms, %zu objects, %lld response bytes\n\n",
              site.name.c_str(), res.completed ? "completed" : "INCOMPLETE",
              res.page_load_time.sec() * 1e3, res.objects_fetched,
              static_cast<long long>(res.response_bytes));

  // --- 3. Layer-diff report for the dominant (response) flow ---------------
  const auto events = recorder.events();
  const auto flows = obs::flows_by_activity(events);
  if (flows.empty()) {
    std::printf("no payload events recorded\n");
    return 1;
  }
  std::printf("captured %llu events (%zu flows, %llu overwritten)\n\n",
              static_cast<unsigned long long>(recorder.total_recorded()), flows.size(),
              static_cast<unsigned long long>(recorder.overwritten()));

  const obs::LayerDiffReport report = obs::layer_diff(events, flows.front().first);
  std::printf("%s\n", report.to_string().c_str());

  recorder.write_jsonl("observability_events.jsonl");
  report.write_csv("observability_report.csv");
  std::printf("wrote observability_events.jsonl and observability_report.csv\n\n");

  // --- 4. Aggregate metrics ------------------------------------------------
  std::printf("metrics snapshot:\n%s", metrics.snapshot().c_str());

  std::printf(
      "\nReading: each transition row is one enforcement gap. tcp>qdisc delay is\n"
      "the EDT pacing the delay policy injected; qdisc>nic splitting is TSO\n"
      "re-segmentation after the split policy halved the wire MSS. A defense\n"
      "evaluated at a layer above the gap never saw these distortions.\n");

  // --- 5. The same load, self-profiled -------------------------------------
  // ProfSpan costs one thread-local load when no profiler is installed, so
  // library code (page_load, the experiment engine, k-FP) is instrumented
  // unconditionally; installing obs::Profiler turns the spans on.
  obs::Profiler prof;
  {
    obs::ScopedProfiler prof_guard(prof);
    obs::ProfSpan run_span("example.run");
    Rng rng2(42);
    for (int i = 0; i < 3; ++i) {
      obs::ProfSpan span("example.page_load");
      (void)workload::run_page_load(site, rng2, opt);
    }
  }
  obs::RunManifest manifest = obs::build_manifest("observability_example", prof,
                                                  &metrics, /*jobs=*/1, /*base_seed=*/42);
  manifest.set_config("site", site.name);
  manifest.set_config("repeats", "3");
  manifest.write("observability_manifest.json");
  obs::write_trace_event("observability_trace.json", prof.records(), "observability_example");
  std::printf("\nprofiled %zu spans; wrote observability_manifest.json and\n"
              "observability_trace.json (open in Perfetto / chrome://tracing)\n",
              prof.records().size());
  return 0;
}
