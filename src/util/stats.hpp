// Small descriptive-statistics toolkit used by the WF pipeline (feature
// extraction, dataset sanitisation) and by the benchmark reporters.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace stob::stats {

/// Arithmetic mean; 0 for an empty input.
double mean(std::span<const double> xs);

/// Sample variance (n-1 denominator); 0 for fewer than two samples.
double variance(std::span<const double> xs);

/// Sample standard deviation.
double stddev(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100]. Input need not be sorted.
/// Convention (pinned by tests/test_util.cpp): empty input -> 0; p outside
/// [0, 100] clamps; NaN p -> NaN; p == 0 / p == 100 return the exact min /
/// max element; the interpolation is the "linear" (type 7 / numpy default)
/// rule over rank p/100 * (n-1).
double percentile(std::span<const double> xs, double p);

/// Same interpolation as percentile(), but the input must already be
/// ascending — no copy, no sort. Callers that need several quantiles of
/// one list sort once and reuse.
double percentile_sorted(std::span<const double> xs, double p);

double median(std::span<const double> xs);
double min(std::span<const double> xs);
double max(std::span<const double> xs);
double sum(std::span<const double> xs);

/// Interquartile range (P75 - P25).
double iqr(std::span<const double> xs);

/// Indices of values within [Q1 - k*IQR, Q3 + k*IQR] (Tukey fence). Used by
/// the dataset sanitiser to drop outlier traces, as the paper does with
/// total download size.
std::vector<std::size_t> iqr_inlier_indices(std::span<const double> xs, double k = 1.5);

/// Streaming mean/variance (Welford). Numerically stable, O(1) memory.
class Welford {
 public:
  void add(double x);
  /// Fold another accumulator in (Chan et al. pairwise update). Merging
  /// b into a equals streaming a's samples then b's in aggregate moments,
  /// and merging in a fixed order is deterministic — the experiment
  /// engine's run-level metric aggregation relies on both.
  void merge(const Welford& other);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // sample variance
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace stob::stats
