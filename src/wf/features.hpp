// k-FP feature extraction (Hayes & Danezis, "k-fingerprinting: A Robust
// Scalable Website Fingerprinting Technique", USENIX Security 2016).
//
// The extractor reproduces the k-FP feature families on (time, direction,
// size) traces: packet counts and fractions, first/last-30 composition,
// packet ordering statistics, outgoing-packet concentration, burst
// behaviour, inter-arrival statistics, transmission-time quantiles,
// packets-per-second statistics, and byte-volume statistics. The exact
// feature list is fixed and named so that models are interpretable and
// datasets are comparable across runs.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "wf/feature_matrix.hpp"
#include "wf/trace.hpp"

namespace stob::wf {

/// Number of features produced by kfp_features().
std::size_t kfp_feature_count();

/// Human-readable names, index-aligned with kfp_features() output.
const std::vector<std::string>& kfp_feature_names();

/// Extract the k-FP feature vector from a trace. Always returns exactly
/// kfp_feature_count() values; degenerate traces (empty, single packet)
/// yield zeros for undefined statistics.
std::vector<double> kfp_features(const Trace& trace);

/// Same extraction, writing into caller-owned storage of exactly
/// kfp_feature_count() entries (e.g. a FeatureMatrix row).
void kfp_features_into(const Trace& trace, std::span<double> out);

/// Extract features for every trace of a dataset into one contiguous
/// row-major matrix (row i <-> trace i).
FeatureMatrix kfp_features(const Dataset& dataset);

}  // namespace stob::wf
