// Defense comparison: protection vs cost across the defense zoo.
//
// Applies each implemented defense (the paper's §3 primitives plus the
// Table 1 literature baselines) to the same simulated website traces and
// prints the trade-off every deployment conversation is about:
//
//     residual k-FP accuracy  vs  bandwidth overhead  vs  latency overhead
//
// The pattern the paper argues from: padding-heavy defenses (BuFLO,
// Tamaraw, FRONT) buy protection with large bandwidth cost, while
// timing/sizing manipulations are nearly free on bandwidth — but need
// stack support to be enforceable at all.
//
// Build & run:   ./build/examples/defense_comparison
#include <cstdio>

#include "defenses/baselines.hpp"
#include "wf/kfp.hpp"
#include "workload/page_load.hpp"

using namespace stob;

int main() {
  std::vector<workload::SiteProfile> sites(workload::nine_sites().begin(),
                                           workload::nine_sites().begin() + 4);
  workload::PageLoadOptions options;
  std::printf("collecting %zu sites x 16 page loads...\n\n", sites.size());
  const wf::Dataset data = workload::collect_dataset(sites, 16, /*seed=*/13, options);

  wf::KFingerprint::Config attack;
  attack.forest.num_trees = 50;
  const double base_acc = wf::cross_validate(data, attack, 4).mean_accuracy;

  std::printf("%-12s %-15s %10s %10s %10s\n", "defense", "strategy", "kFP-acc", "BW-ovh",
              "Lat-ovh");
  std::printf("%-12s %-15s %10.3f %10s %10s\n", "(none)", "-", base_acc, "0%", "0%");
  for (const auto& d : defenses::all_defenses()) {
    Rng rng(5);
    const defenses::Overhead ovh = defenses::measure_overhead(data, *d, rng);
    Rng rng2(5);
    const wf::Dataset defended =
        data.transformed([&](const wf::Trace& t) { return d->apply(t, rng2); });
    const double acc = wf::cross_validate(defended, attack, 4).mean_accuracy;
    std::printf("%-12s %-15s %10.3f %9.0f%% %9.0f%%\n", d->name().c_str(),
                d->strategy().c_str(), acc, ovh.bandwidth * 100, ovh.latency * 100);
  }
  std::printf("\n(4 sites, small samples: treat numbers as illustrative; bench/table1_defenses\n");
  std::printf("runs the full version.)\n");
  return 0;
}
