// Cross-cutting property sweeps (TEST_P): invariants that must hold for
// every member of a family, not just hand-picked instances.
//
//  * Qdisc conservation: everything enqueued is dequeued exactly once, in
//    per-flow order, for both disciplines across flow counts.
//  * Defense invariants: monotone timestamps, no negative sizes, byte
//    conservation for non-padding defenses, across the whole defense zoo
//    and multiple seeds.
//  * Policy safety under the guard: for every built-in policy and seed,
//    the guarded decision stream never exceeds the CCA schedule.
//  * Feature totality: every extractor yields finite, fixed-width vectors
//    for adversarial trace shapes.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <tuple>

#include "core/cca_guard.hpp"
#include "core/policies.hpp"
#include "defenses/baselines.hpp"
#include "stack/qdisc.hpp"
#include "wf/cumul.hpp"
#include "wf/features.hpp"

namespace stob {
namespace {

// ----------------------------------------------------- qdisc conservation

using QdiscParams = std::tuple<std::string, int /*flows*/, int /*packets*/>;

class QdiscConservation : public ::testing::TestWithParam<QdiscParams> {
 protected:
  static std::unique_ptr<stack::Qdisc> make(const std::string& kind) {
    if (kind == "fifo") return std::make_unique<stack::FifoQdisc>();
    return std::make_unique<stack::FqQdisc>();
  }
};

TEST_P(QdiscConservation, ExactlyOnceInPerFlowOrder) {
  const auto& [kind, flows, packets] = GetParam();
  auto q = make(kind);
  Rng rng(static_cast<std::uint64_t>(flows * 1000 + packets));
  std::map<net::Port, std::vector<std::uint64_t>> sent;
  for (int i = 0; i < packets; ++i) {
    net::Packet p;
    p.id = net::next_packet_id();
    const auto port = static_cast<net::Port>(1000 + rng.uniform_int(0, flows - 1));
    p.flow = {1, 2, port, 443, net::Proto::Tcp};
    p.header = Bytes(net::kEthIpTcpHeader);
    p.payload = Bytes(rng.uniform_int(0, 1448));
    sent[port].push_back(p.id);
    q->enqueue(std::move(p));
  }
  std::map<net::Port, std::vector<std::uint64_t>> got;
  std::size_t total = 0;
  while (auto p = q->dequeue(TimePoint::zero())) {
    got[p->flow.src_port].push_back(p->id);
    ++total;
  }
  ASSERT_EQ(total + q->dropped(), static_cast<std::size_t>(packets));
  EXPECT_EQ(q->dropped(), 0u);  // capacity is generous
  for (const auto& [port, ids] : sent) EXPECT_EQ(got[port], ids) << kind << " flow " << port;
  EXPECT_TRUE(q->empty());
  EXPECT_EQ(q->backlog().count(), 0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, QdiscConservation,
                         ::testing::Combine(::testing::Values("fifo", "fq"),
                                            ::testing::Values(1, 3, 16),
                                            ::testing::Values(10, 200)));

// ------------------------------------------------------ defense invariants

using DefenseParams = std::tuple<int /*defense index*/, int /*seed*/>;

class DefenseInvariants : public ::testing::TestWithParam<DefenseParams> {};

TEST_P(DefenseInvariants, WellFormedOutput) {
  const auto& [index, seed] = GetParam();
  const auto zoo = defenses::all_defenses();
  ASSERT_LT(static_cast<std::size_t>(index), zoo.size());
  const auto& defense = *zoo[static_cast<std::size_t>(index)];

  Rng gen(static_cast<std::uint64_t>(seed));
  wf::Trace original;
  double time = 0.0;
  for (int i = 0; i < 150; ++i) {
    original.add(time, gen.chance(0.25) ? +1 : -1, gen.uniform_int(66, 1514));
    time += gen.uniform(0.0002, 0.02);
  }
  original.normalize();

  Rng rng(static_cast<std::uint64_t>(seed) * 7919);
  const wf::Trace defended = defense.apply(original, rng);

  ASSERT_FALSE(defended.empty()) << defense.name();
  for (std::size_t i = 0; i < defended.size(); ++i) {
    const auto& p = defended.packets()[i];
    EXPECT_GT(p.size, 0) << defense.name();
    EXPECT_TRUE(p.direction == 1 || p.direction == -1) << defense.name();
    if (i > 0) EXPECT_GE(p.time, defended.packets()[i - 1].time) << defense.name();
  }
  // Defenses never destroy payload: total bytes never shrink.
  EXPECT_GE(defended.total_bytes(), original.total_bytes()) << defense.name();
  // Non-padding defenses preserve bytes exactly.
  if (!defense.manipulations().padding) {
    EXPECT_EQ(defended.total_bytes(), original.total_bytes()) << defense.name();
  }
  // Determinism: same seed, same output.
  Rng rng2(static_cast<std::uint64_t>(seed) * 7919);
  EXPECT_EQ(defense.apply(original, rng2), defended) << defense.name();
}

INSTANTIATE_TEST_SUITE_P(Sweep, DefenseInvariants,
                         ::testing::Combine(::testing::Range(0, 11),
                                            ::testing::Values(1, 2, 3)));

// ------------------------------------------------- guarded policy safety

using PolicyParams = std::tuple<std::string, int /*seed*/>;

class GuardedPolicySafety : public ::testing::TestWithParam<PolicyParams> {};

TEST_P(GuardedPolicySafety, NeverMoreAggressiveThanCca) {
  const auto& [name, seed] = GetParam();
  std::unique_ptr<core::Policy> policy;
  core::SplitPolicy split;
  core::DelayPolicy delay;
  if (name == "split") {
    policy = std::make_unique<core::SplitPolicy>();
  } else if (name == "delay") {
    policy = std::make_unique<core::DelayPolicy>();
  } else if (name == "combined") {
    policy = std::make_unique<core::CompositePolicy>(std::vector<core::Policy*>{&split, &delay});
  } else {
    core::SweepSizePolicy::Config cfg;
    cfg.alpha = 60;
    policy = std::make_unique<core::SweepSizePolicy>(cfg);
  }
  core::CcaGuard guard(*policy);

  Rng rng(static_cast<std::uint64_t>(seed));
  TimePoint now = TimePoint::zero();
  for (int i = 0; i < 500; ++i) {
    now += Duration::micros(rng.uniform_int(5, 2000));
    core::SegmentContext ctx;
    ctx.flow = {1, 2, 40000, 443, net::Proto::Tcp};
    ctx.now = now;
    ctx.stream_offset = static_cast<std::uint64_t>(i) * 65160;
    ctx.cca_segment = Bytes(rng.uniform_int(1448, 65160));
    ctx.mss = Bytes(1448);
    ctx.cca_departure = now + Duration::micros(rng.uniform_int(0, 500));
    ctx.cca_pacing_rate = DataRate::mbps(rng.uniform_int(10, 10000));
    const core::SegmentDecision d = guard.on_segment(ctx);
    ASSERT_LE(d.segment.count(), ctx.cca_segment.count()) << name;
    ASSERT_GE(d.segment.count(), 1) << name;
    ASSERT_LE(d.wire_mss.count(), ctx.mss.count()) << name;
    ASSERT_GE(d.wire_mss.count(), 1) << name;
    ASSERT_GE(d.departure.ns(), ctx.cca_departure.ns()) << name;
  }
  // All built-in policies are CCA-compliant by construction: the guard
  // should never have had to clamp.
  EXPECT_EQ(guard.segment_clamps(), 0u) << name;
  EXPECT_EQ(guard.mss_clamps(), 0u) << name;
  EXPECT_EQ(guard.departure_clamps(), 0u) << name;
}

INSTANTIATE_TEST_SUITE_P(Sweep, GuardedPolicySafety,
                         ::testing::Combine(::testing::Values("split", "delay", "combined",
                                                              "sweep"),
                                            ::testing::Values(11, 22, 33)));

// ------------------------------------------------------- feature totality

class FeatureTotality : public ::testing::TestWithParam<int> {};

TEST_P(FeatureTotality, FiniteFixedWidthOnAdversarialTraces) {
  const int kind = GetParam();
  wf::Trace t;
  Rng rng(static_cast<std::uint64_t>(kind));
  switch (kind) {
    case 0: break;                                   // empty
    case 1: t.add(0.0, +1, 66); break;               // single packet
    case 2:                                          // all one direction
      for (int i = 0; i < 64; ++i) t.add(i * 0.001, -1, 1514);
      break;
    case 3:                                          // all simultaneous
      for (int i = 0; i < 64; ++i) t.add(0.0, i % 2 ? 1 : -1, 100);
      break;
    case 4:                                          // huge gaps
      t.add(0.0, +1, 100);
      t.add(500.0, -1, 100);
      t.add(1000.0, +1, 100);
      break;
    default:                                         // random soup
      for (int i = 0; i < 500; ++i) {
        t.add(rng.uniform(0, 10), rng.chance(0.5) ? 1 : -1, rng.uniform_int(1, 65536));
      }
      t.normalize();
  }
  const auto kfp = wf::kfp_features(t);
  ASSERT_EQ(kfp.size(), wf::kfp_feature_count());
  for (double v : kfp) ASSERT_TRUE(std::isfinite(v)) << kind;
  // The name table is index-aligned with the value vector: same width, every
  // slot named, no name reused for two slots.
  const auto& names = wf::kfp_feature_names();
  ASSERT_EQ(names.size(), kfp.size());
  std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), names.size());
  for (const std::string& name : names) EXPECT_FALSE(name.empty());
  // Spot-check a named slot against a directly computable quantity.
  const auto it = std::find(names.begin(), names.end(), "count_total");
  ASSERT_NE(it, names.end());
  EXPECT_EQ(kfp[static_cast<std::size_t>(it - names.begin())],
            static_cast<double>(t.packets().size()));
  const auto cumul = wf::cumul_features(t, 100);
  ASSERT_EQ(cumul.size(), 104u);
  for (double v : cumul) ASSERT_TRUE(std::isfinite(v)) << kind;
}

INSTANTIATE_TEST_SUITE_P(Sweep, FeatureTotality, ::testing::Range(0, 8));

}  // namespace
}  // namespace stob
