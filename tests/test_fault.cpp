// Tests for the adverse-network fault layer (src/fault/fault.hpp) and the
// runtime stack-invariant checker (src/fault/invariants.hpp): impairment
// semantics, seeded determinism, transport recovery driven through the
// fault layer, and the checker's clean / violating verdicts.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/policy.hpp"
#include "exp/experiment.hpp"
#include "fault/fault.hpp"
#include "fault/invariants.hpp"
#include "net/packet.hpp"
#include "net/path.hpp"
#include "net/pipe.hpp"
#include "obs/trace_recorder.hpp"
#include "quic/quic_connection.hpp"
#include "sim/simulator.hpp"
#include "stack/host.hpp"
#include "stack/host_pair.hpp"
#include "tcp/tcp_connection.hpp"
#include "workload/page_load.hpp"
#include "workload/website.hpp"

namespace stob::fault {
namespace {

using stack::HostPair;

net::Packet make_packet(std::int64_t payload) {
  net::Packet p;
  p.id = net::next_packet_id();
  p.flow = {1, 2, 1000, 80, net::Proto::Tcp};
  p.header = Bytes(net::kEthIpTcpHeader);
  p.payload = Bytes(payload);
  return p;
}

net::Pipe::Config fast_pipe() {
  return {DataRate::gbps(1), Duration::millis(1), Bytes(0), 0.0};
}

// ------------------------------------------------------------ impairments

TEST(FaultInjector, DropFiresTxAccountingNeverRx) {
  sim::Simulator s;
  net::Pipe pipe(s, fast_pipe());
  Profile p;
  p.iid_loss = 1.0;
  FaultInjector inj(s, pipe, p, Rng(1));
  int tx_taps = 0, rx_taps = 0, completions = 0, sunk = 0;
  pipe.set_tx_tap([&](const net::Packet&, TimePoint) { ++tx_taps; });
  pipe.set_rx_tap([&](const net::Packet&, TimePoint) { ++rx_taps; });
  pipe.set_tx_complete([&](const net::Packet&) { ++completions; });
  pipe.set_sink([&](net::Packet) { ++sunk; });
  pipe.send(make_packet(1000));
  s.run();
  // The sender's ring must be freed (tx side saw the packet) but nothing
  // may reach the receive side of the link.
  EXPECT_EQ(tx_taps, 1);
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(rx_taps, 0);
  EXPECT_EQ(sunk, 0);
  EXPECT_EQ(pipe.lost_packets(), 1u);
  EXPECT_EQ(pipe.delivered_packets(), 0u);
  EXPECT_EQ(inj.stats().lost, 1u);
}

TEST(FaultInjector, GilbertElliottLossIsBursty) {
  sim::Simulator s;
  net::Pipe pipe(s, fast_pipe());
  Profile p;
  p.bursty = {0.05, 0.30, 0.0, 1.0};  // Bad state loses everything
  FaultInjector inj(s, pipe, p, Rng(42));
  std::vector<std::uint64_t> sent;
  std::unordered_set<std::uint64_t> received;
  pipe.set_sink([&](net::Packet q) { received.insert(q.id); });
  for (int i = 0; i < 2000; ++i) {
    net::Packet q = make_packet(100);
    sent.push_back(q.id);
    pipe.send(std::move(q));
  }
  s.run();
  // Stationary Bad occupancy is 0.05/(0.05+0.30) ~ 14%; check the loss mass
  // is in that ballpark and that losses cluster into bursts, which an
  // i.i.d. model at the same rate almost never produces.
  const auto lost = static_cast<std::int64_t>(inj.stats().lost);
  EXPECT_GT(lost, 150);
  EXPECT_LT(lost, 500);
  int run = 0, max_run = 0;
  for (std::uint64_t id : sent) {
    run = received.count(id) != 0 ? 0 : run + 1;
    max_run = std::max(max_run, run);
  }
  EXPECT_GE(max_run, 3);
}

TEST(FaultInjector, DuplicationDeliversBothCopies) {
  sim::Simulator s;
  net::Pipe pipe(s, fast_pipe());
  Profile p;
  p.duplicate = {1.0};
  FaultInjector inj(s, pipe, p, Rng(3));
  std::vector<std::uint64_t> arrivals;
  pipe.set_sink([&](net::Packet q) { arrivals.push_back(q.id); });
  for (int i = 0; i < 3; ++i) pipe.send(make_packet(500));
  s.run();
  ASSERT_EQ(arrivals.size(), 6u);
  EXPECT_EQ(inj.stats().duplicated, 3u);
  EXPECT_EQ(pipe.delivered_packets(), 6u);
  // Each original immediately followed by its copy.
  for (std::size_t i = 0; i < arrivals.size(); i += 2) {
    EXPECT_EQ(arrivals[i], arrivals[i + 1]);
  }
}

TEST(FaultInjector, CorruptionIsDeliveredMarkedAndDroppedAtHost) {
  sim::Simulator s;
  net::Pipe pipe(s, fast_pipe());
  Profile p;
  p.corrupt = {1.0};
  FaultInjector inj(s, pipe, p, Rng(4));
  int corrupted_arrivals = 0;
  stack::Host host(s, 2);
  pipe.set_sink([&](net::Packet q) {
    if (q.corrupted) ++corrupted_arrivals;
    host.receive(std::move(q));
  });
  pipe.send(make_packet(800));
  s.run();
  // The packet occupies the wire and reaches the host, but checksum
  // validation eats it before any transport demux.
  EXPECT_EQ(corrupted_arrivals, 1);
  EXPECT_EQ(inj.stats().corrupted, 1u);
  EXPECT_EQ(host.checksum_drops(), 1u);
  EXPECT_EQ(host.unmatched_packets(), 0u);
}

TEST(FaultInjector, ReorderingInvertsArrivalOrder) {
  sim::Simulator s;
  net::Pipe pipe(s, fast_pipe());
  Profile p;
  p.reorder = {0.3, 4, Duration::millis(1)};
  FaultInjector inj(s, pipe, p, Rng(5));
  std::vector<std::uint64_t> sent, arrivals;
  pipe.set_sink([&](net::Packet q) { arrivals.push_back(q.id); });
  for (int i = 0; i < 100; ++i) {
    net::Packet q = make_packet(100);
    sent.push_back(q.id);
    pipe.send(std::move(q));
  }
  s.run();
  ASSERT_EQ(arrivals.size(), sent.size());  // reordering never loses
  EXPECT_GT(inj.stats().reordered, 0u);
  EXPECT_NE(arrivals, sent);
  EXPECT_TRUE(std::is_permutation(arrivals.begin(), arrivals.end(), sent.begin()));
}

TEST(FaultInjector, JitterPreservesOrder) {
  sim::Simulator s;
  net::Pipe pipe(s, fast_pipe());
  Profile p;
  p.jitter = {Duration::millis(5)};
  FaultInjector inj(s, pipe, p, Rng(6));
  std::vector<std::uint64_t> sent, arrivals;
  std::vector<TimePoint> times;
  pipe.set_sink([&](net::Packet q) {
    arrivals.push_back(q.id);
    times.push_back(s.now());
  });
  for (int i = 0; i < 100; ++i) {
    net::Packet q = make_packet(100);
    sent.push_back(q.id);
    pipe.send(std::move(q));
  }
  s.run();
  EXPECT_EQ(arrivals, sent);
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
  EXPECT_EQ(inj.stats().delivered, 100u);
}

TEST(FaultInjector, FlapDropsOnlyDuringBlackout) {
  sim::Simulator s;
  net::Pipe pipe(s, fast_pipe());
  Profile p;
  p.flap = {Duration::millis(10), Duration::millis(10)};  // 10 up / 10 down
  FaultInjector inj(s, pipe, p, Rng(7));
  int sunk = 0;
  pipe.set_sink([&](net::Packet) { ++sunk; });
  s.schedule_at(TimePoint(Duration::millis(5).ns()), [&] { pipe.send(make_packet(100)); });
  s.schedule_at(TimePoint(Duration::millis(15).ns()), [&] { pipe.send(make_packet(100)); });
  s.run();
  EXPECT_EQ(sunk, 1);
  EXPECT_EQ(inj.stats().flap_lost, 1u);
  EXPECT_FALSE(inj.link_down(TimePoint(Duration::millis(5).ns())));
  EXPECT_TRUE(inj.link_down(TimePoint(Duration::millis(15).ns())));
  // Past the active horizon the link stays up so event queues drain.
  EXPECT_FALSE(inj.link_down(TimePoint(Duration::seconds(91).ns())));
}

TEST(FaultInjector, OscillationTogglesAndRestoresBaseRate) {
  sim::Simulator s;
  net::Pipe pipe(s, fast_pipe());
  const std::int64_t base_bps = pipe.config().rate.bits_per_sec();
  Profile p;
  p.oscillation = {0.25, Duration::millis(20)};
  p.active_for = Duration::millis(100);
  FaultInjector inj(s, pipe, p, Rng(8));
  std::int64_t bps_at_15ms = 0;
  s.schedule_at(TimePoint(Duration::millis(15).ns()),
                [&] { bps_at_15ms = pipe.config().rate.bits_per_sec(); });
  s.run();
  EXPECT_EQ(bps_at_15ms, base_bps / 4);  // in the low half-period
  EXPECT_EQ(pipe.config().rate.bits_per_sec(), base_bps);  // restored at horizon
}

TEST(FaultInjector, SameSeedSameArrivalSchedule) {
  auto run_once = [](std::uint64_t seed) {
    net::PacketIdScope ids;
    sim::Simulator s;
    net::Pipe pipe(s, fast_pipe());
    FaultInjector inj(s, pipe, adverse_mix(), Rng(seed));
    std::vector<std::pair<std::uint64_t, std::int64_t>> arrivals;
    pipe.set_sink([&](net::Packet q) { arrivals.emplace_back(q.id, s.now().ns()); });
    for (int i = 0; i < 300; ++i) pipe.send(make_packet(200));
    s.run();
    return arrivals;
  };
  EXPECT_EQ(run_once(99), run_once(99));
  EXPECT_NE(run_once(99), run_once(100));
}

TEST(FaultInjector, DetachRestoresCleanPipe) {
  sim::Simulator s;
  net::Pipe pipe(s, fast_pipe());
  {
    Profile p;
    p.iid_loss = 1.0;
    FaultInjector inj(s, pipe, p, Rng(1));
    EXPECT_EQ(pipe.fault_model(), &inj);
  }
  EXPECT_EQ(pipe.fault_model(), nullptr);
  int sunk = 0;
  pipe.set_sink([&](net::Packet) { ++sunk; });
  pipe.send(make_packet(100));
  s.run();
  EXPECT_EQ(sunk, 1);
}

// ------------------------------------------- transport recovery via faults

struct Transfer {
  HostPair hp;
  std::unique_ptr<tcp::TcpListener> listener;
  std::unique_ptr<tcp::TcpConnection> client;
  Bytes server_received;
  bool client_connected = false;

  explicit Transfer(HostPair::Config cfg = HostPair::Config{},
                    tcp::TcpConnection::Config conn_cfg = tcp::TcpConnection::Config{})
      : hp(cfg) {
    listener = std::make_unique<tcp::TcpListener>(hp.server(), 80, conn_cfg);
    listener->set_accept_callback([this](tcp::TcpConnection& c) {
      c.on_data = [this](Bytes n) { server_received += n; };
    });
    client = std::make_unique<tcp::TcpConnection>(hp.client(), conn_cfg);
    client->on_connected = [this] { client_connected = true; };
  }
};

TEST(FaultTransport, TcpTransferCompletesUnderBurstyLoss) {
  Transfer t;
  PathFaults faults(t.hp.sim(), t.hp.path(), PathProfile::symmetric(bursty_loss()), Rng(11));
  t.client->connect(2, 80);
  t.client->send(Bytes(200'000));
  t.hp.run(TimePoint(Duration::seconds(60).ns()));
  EXPECT_EQ(t.server_received.count(), 200'000);
  EXPECT_GT(faults.forward().stats().lost + faults.backward().stats().lost, 0u);
}

TEST(FaultTransport, TcpRtoBacksOffExponentiallyAndResets) {
  Transfer t;
  t.client->connect(2, 80);
  // A short clean exchange first: RTO needs an RTT sample to leave its 1 s
  // initial value (the handshake alone is not sampled).
  t.client->send(Bytes(2000));
  t.hp.run(TimePoint(Duration::millis(500).ns()));
  ASSERT_TRUE(t.client_connected);
  ASSERT_EQ(t.server_received.count(), 2000);
  const Duration rto_before = t.client->rto();
  EXPECT_LT(rto_before.ns(), Duration::seconds(1).ns());

  // Blackout: everything the client sends vanishes, so each RTO fire
  // doubles the timeout.
  Profile blackout;
  blackout.iid_loss = 1.0;
  auto inj = std::make_unique<FaultInjector>(t.hp.sim(), t.hp.path().forward(), blackout, Rng(12));
  t.client->send(Bytes(5000));
  t.hp.run(TimePoint(Duration::seconds(8).ns()));
  EXPECT_GE(t.client->rto().ns(), 4 * rto_before.ns());  // doubled at least twice
  EXPECT_GE(t.client->stats().retransmissions, 2u);

  // Heal the path and let the retransmission drain through.
  inj.reset();
  t.hp.run(TimePoint(Duration::seconds(25).ns()));
  EXPECT_EQ(t.server_received.count(), 7000);
  // Karn's rule keeps retransmitted segments out of the estimator, so the
  // reset needs one fresh (never-retransmitted) exchange.
  t.client->send(Bytes(2000));
  t.hp.run(TimePoint(Duration::seconds(40).ns()));
  EXPECT_EQ(t.server_received.count(), 9000);
  EXPECT_LT(t.client->rto().ns(), Duration::seconds(1).ns());
}

TEST(FaultTransport, TcpRtoRespectsMaxCap) {
  tcp::TcpConnection::Config cc;
  cc.rtt.max_rto = Duration::seconds(2);
  Transfer t(HostPair::Config{}, cc);
  t.client->connect(2, 80);
  t.hp.run(TimePoint(Duration::millis(200).ns()));
  ASSERT_TRUE(t.client_connected);

  Profile blackout;
  blackout.iid_loss = 1.0;
  auto inj = std::make_unique<FaultInjector>(t.hp.sim(), t.hp.path().forward(), blackout, Rng(13));
  t.client->send(Bytes(5000));
  t.hp.run(TimePoint(Duration::seconds(7).ns()));
  EXPECT_EQ(t.client->rto().ns(), Duration::seconds(2).ns());  // pinned at the cap

  inj.reset();
  t.hp.run(TimePoint(Duration::seconds(30).ns()));
  EXPECT_EQ(t.server_received.count(), 5000);
}

struct QuicPair {
  HostPair hp;
  std::unique_ptr<quic::QuicListener> listener;
  std::unique_ptr<quic::QuicConnection> client;
  Bytes server_received;

  QuicPair() {
    listener = std::make_unique<quic::QuicListener>(hp.server(), 443,
                                                    quic::QuicConnection::Config{});
    listener->set_accept_callback([this](quic::QuicConnection& c) {
      c.on_stream_data = [this](std::uint64_t, Bytes n, bool) { server_received += n; };
    });
    client = std::make_unique<quic::QuicConnection>(hp.client(), quic::QuicConnection::Config{});
  }
};

TEST(FaultTransport, QuicPtoBacksOffUnderProbeLossAndResets) {
  QuicPair q;
  q.client->connect(2, 443);
  q.hp.run(TimePoint(Duration::millis(200).ns()));
  ASSERT_TRUE(q.client->established());
  EXPECT_EQ(q.client->pto_backoff(), 0);

  Profile blackout;
  blackout.iid_loss = 1.0;
  auto inj =
      std::make_unique<FaultInjector>(q.hp.sim(), q.hp.path().forward(), blackout, Rng(14));
  q.client->send_stream(0, Bytes(20'000));
  q.hp.run(TimePoint(Duration::seconds(6).ns()));
  EXPECT_GE(q.client->pto_backoff(), 2);  // repeated probes lost -> exponential backoff

  inj.reset();
  q.hp.run(TimePoint(Duration::seconds(40).ns()));
  EXPECT_EQ(q.server_received.count(), 20'000);
  EXPECT_EQ(q.client->pto_backoff(), 0);  // newly-acked data resets the backoff
}

// ------------------------------------------------------ invariant checker

TEST(InvariantChecker, CleanTcpPageLoadPassesAllChecks) {
  StackInvariantChecker checker;
  obs::ScopedListener guard(checker);
  workload::PageLoadOptions po;
  po.tls_records = true;  // arms the TLS->TCP conservation invariant
  Rng rng(21);
  const workload::PageLoadResult r =
      workload::run_page_load(workload::nine_sites()[0], rng, po);
  EXPECT_TRUE(r.completed);
  EXPECT_GT(checker.checks(), 1000u);
  EXPECT_EQ(checker.violations(), 0u) << checker.first_report();
}

TEST(InvariantChecker, CleanQuicTransferPassesAllChecks) {
  StackInvariantChecker checker;
  obs::ScopedListener guard(checker);
  QuicPair q;
  q.client->connect(2, 443);
  q.client->send_stream(0, Bytes(300'000));
  q.hp.run(TimePoint(Duration::seconds(30).ns()));
  EXPECT_EQ(q.server_received.count(), 300'000);
  EXPECT_GT(checker.checks(), 100u);
  EXPECT_EQ(checker.violations(), 0u) << checker.first_report();
}

TEST(InvariantChecker, AdversePathStaysViolationFree) {
  StackInvariantChecker checker;
  obs::ScopedListener guard(checker);
  workload::PageLoadOptions po;
  po.path_faults = PathProfile::symmetric(adverse_mix());
  Rng rng(22);
  (void)workload::run_page_load(workload::nine_sites()[1], rng, po);
  EXPECT_GT(checker.checks(), 1000u);
  EXPECT_EQ(checker.violations(), 0u) << checker.first_report();
}

TEST(InvariantChecker, InjectedViolationReportsWithFlightRecorderDump) {
  obs::TraceRecorder recorder(64);
  obs::ScopedRecorder rec_guard(recorder);
  StackInvariantChecker checker;
  obs::ScopedListener guard(checker);
  // Produce some traffic so the flight recorder has a tail to dump.
  Transfer t;
  t.client->connect(2, 80);
  t.client->send(Bytes(10'000));
  t.hp.run(TimePoint(Duration::seconds(5).ns()));
  ASSERT_GT(recorder.events().size(), 0u);

  checker.inject_violation_for_test();
  EXPECT_EQ(checker.violations(), 1u);
  EXPECT_NE(checker.first_report().find("injected-for-test"), std::string::npos);
  EXPECT_NE(checker.first_report().find("flight recorder"), std::string::npos);
}

TEST(InvariantChecker, ThrowModeThrows) {
  StackInvariantChecker::Config cfg;
  cfg.throw_on_violation = true;
  StackInvariantChecker checker(cfg);
  EXPECT_THROW(checker.inject_violation_for_test(), StackInvariantError);
}

/// A deliberately unguarded policy: ships every segment immediately,
/// ignoring the CCA pacing schedule — exactly what core::CcaGuard exists to
/// prevent. The checker must catch it through the real stack.
class AggressivePolicy final : public core::Policy {
 public:
  core::SegmentDecision on_segment(const core::SegmentContext& ctx) override {
    return core::SegmentDecision{ctx.cca_segment, ctx.mss, ctx.now};
  }
  std::string name() const override { return "aggressive"; }
};

TEST(InvariantChecker, AggressivePolicyCannotOutrunPacerThroughRealStack) {
  // The transport holds segments internally until their pacing slot
  // (send_more's pacing_next_ gate), so even a policy that ships everything
  // "now" cannot produce a departure ahead of the CCA schedule — the
  // checker confirms the admission gate enforces the invariant end-to-end.
  StackInvariantChecker checker;
  obs::ScopedListener guard(checker);
  AggressivePolicy policy;
  tcp::TcpConnection::Config cc;
  cc.policy = &policy;
  cc.tso_enabled = false;  // more, smaller emissions = more chances to slip
  HostPair::Config cfg;
  cfg.path = net::DuplexPath::symmetric(DataRate::mbps(20), Duration::millis(10));
  Transfer t(cfg, cc);
  t.client->connect(2, 80);
  t.client->send(Bytes(500'000));
  t.hp.run(TimePoint(Duration::seconds(30).ns()));
  EXPECT_EQ(t.server_received.count(), 500'000);
  EXPECT_GT(checker.checks(), 1000u);
  EXPECT_EQ(checker.violations(), 0u) << checker.first_report();
}

/// A broken link component that replays every packet without declaring the
/// copy to the observability tap — the receiver then sees more wire bytes
/// than were ever transmitted plus the (empty) duplication budget.
class RogueDuplicator final : public net::FaultModel {
 public:
  void on_transmitted(net::Pipe& pipe, net::Packet p) override {
    net::Packet copy = p;
    pipe.deliver(std::move(p));
    pipe.deliver(std::move(copy), Duration::micros(1));
  }
};

TEST(InvariantChecker, CatchesRogueWireDuplication) {
  StackInvariantChecker checker;
  obs::ScopedListener guard(checker);
  sim::Simulator s;
  net::Pipe pipe(s, {DataRate::gbps(1), Duration::millis(1), Bytes(0), 0.0});
  RogueDuplicator rogue;
  pipe.set_fault_model(&rogue);
  pipe.set_sink([](net::Packet) {});
  pipe.send(make_packet(1000));
  s.run();
  pipe.set_fault_model(nullptr);
  EXPECT_GT(checker.violations(), 0u);
  EXPECT_NE(checker.first_report().find("wire-conservation"), std::string::npos);
}

// --------------------------------------------------------- exp fault axis

TEST(ExpFaultAxis, GridDecomposition) {
  exp::ExperimentGrid grid;
  grid.sites = {workload::nine_sites()[0], workload::nine_sites()[1]};
  grid.samples = 2;
  grid.ccas = {"reno", "cubic"};
  grid.faults = {PathProfile::symmetric(clean()), PathProfile::symmetric(bursty_loss())};
  EXPECT_EQ(grid.job_count(), 2u * 2u * 2u * 2u);
  const exp::JobSpec first = grid.job(0);
  EXPECT_EQ(first.cca, 0u);
  EXPECT_EQ(first.sample, 0u);
  EXPECT_EQ(first.site, 0u);
  EXPECT_EQ(first.fault, 0u);
  // cca is the fastest axis, fault the slowest.
  EXPECT_EQ(grid.job(1).cca, 1u);
  EXPECT_EQ(grid.job(1).fault, 0u);
  const exp::JobSpec last = grid.job(grid.job_count() - 1);
  EXPECT_EQ(last.cca, 1u);
  EXPECT_EQ(last.sample, 1u);
  EXPECT_EQ(last.site, 1u);
  EXPECT_EQ(last.fault, 1u);
  // First job of the second fault block: everything else rewinds to zero.
  const exp::JobSpec block = grid.job(grid.job_count() / 2);
  EXPECT_EQ(block.fault, 1u);
  EXPECT_EQ(block.cca, 0u);
  EXPECT_EQ(block.sample, 0u);
  EXPECT_EQ(block.site, 0u);
}

TEST(ExpFaultAxis, GridRunsCheckerAndStaysDeterministic) {
  exp::ExperimentGrid grid;
  grid.sites = {workload::nine_sites()[0]};
  grid.samples = 1;
  grid.faults = {PathProfile::symmetric(bursty_loss())};
  grid.base_seed = 77;
  exp::RunOptions run;
  run.jobs = 2;
  run.check_invariants = true;
  run.check_determinism = true;  // re-runs serially and compares bytes
  const std::vector<exp::JobResult> results = exp::run_grid(grid, run);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_GT(results[0].invariant_checks, 0u);
  EXPECT_EQ(results[0].invariant_violations, 0u) << results[0].first_violation;
}

}  // namespace
}  // namespace stob::fault
