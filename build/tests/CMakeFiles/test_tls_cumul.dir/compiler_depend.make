# Empty compiler generated dependencies file for test_tls_cumul.
# This may be replaced when dependencies are built.
