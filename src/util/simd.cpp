#include "util/simd.hpp"

#include <cstdlib>
#include <cstring>

namespace stob::simd {

namespace {

Level detect() {
#if defined(STOB_SIMD_DISABLED)
  return Level::Scalar;
#else
  if (const char* env = std::getenv("STOB_SIMD")) {
    if (std::strcmp(env, "off") == 0 || std::strcmp(env, "scalar") == 0 ||
        std::strcmp(env, "0") == 0) {
      return Level::Scalar;
    }
  }
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx2")) return Level::Avx2;
  return Level::Scalar;
#elif defined(__aarch64__) && defined(__ARM_NEON)
  return Level::Neon;
#else
  return Level::Scalar;
#endif
#endif
}

}  // namespace

Level active_level() {
  static const Level level = detect();
  return level;
}

const char* level_name(Level level) {
  switch (level) {
    case Level::Avx2:
      return "avx2";
    case Level::Neon:
      return "neon";
    case Level::Scalar:
      break;
  }
  return "scalar";
}

}  // namespace stob::simd
