// Thread-local freelist pool for small raw buffers.
//
// The per-segment allocation churn in the hot path comes from two places:
// variable-length packet metadata (SACK blocks, QUIC frame lists) and
// oversized event-callback captures. Both want the same thing — a few tens
// to a few hundred bytes, allocated and freed millions of times per run,
// always on the simulation's own thread. This pool serves them from
// per-thread, power-of-two-bucketed freelists: after warm-up the hot path
// never touches the global allocator, and because each worker thread owns
// its freelists there is no cross-thread contention or synchronisation
// (the experiment engine's job isolation already guarantees buffers do not
// migrate between threads).
#pragma once

#include <cstddef>
#include <cstdint>

namespace stob::mem {

/// Allocate `bytes` of max_align-aligned storage, preferring the calling
/// thread's freelist. `bytes` == 0 is served as 1. Buffers larger than the
/// largest bucket fall through to the global allocator.
void* pool_alloc(std::size_t bytes);

/// Return a pool_alloc'd buffer. `bytes` must be the size passed to
/// pool_alloc (the pool re-derives the bucket from it). Freed buffers are
/// cached up to a per-bucket cap, then released for real.
void pool_free(void* p, std::size_t bytes) noexcept;

struct PoolStats {
  std::uint64_t hits = 0;         ///< allocs served from a freelist
  std::uint64_t misses = 0;       ///< allocs that hit the global allocator
  std::uint64_t spills = 0;       ///< frees released for real (bucket full
                                  ///< or buffer above the largest bucket)
  std::uint64_t outstanding = 0;  ///< live pool_alloc'd buffers
  std::uint64_t cached = 0;       ///< buffers currently parked in freelists
};

/// Counters for the calling thread's pool.
PoolStats pool_stats();

/// Drop every cached buffer on the calling thread back to the allocator
/// (tests use this to assert no leaks; long-lived workers may call it
/// between batches to trim memory).
void pool_purge() noexcept;

}  // namespace stob::mem
