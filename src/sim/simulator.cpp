#include "sim/simulator.hpp"

#include <cassert>
#include <utility>

namespace stob::sim {

EventId Simulator::schedule_at(TimePoint when, Callback cb) {
  assert(cb);
  if (when < now_) when = now_;  // never schedule into the past
  const std::uint64_t seq = next_seq_++;
  queue_.push(Entry{when, seq, std::move(cb)});
  return EventId(seq);
}

void Simulator::cancel(EventId id) {
  if (!id.valid()) return;
  // The entry stays in the heap but is skipped when popped; the set keeps
  // pending() accurate and prevents double counting.
  if (cancelled_.insert(id.seq_).second) {
    ++cancelled_in_queue_;
    ++cancelled_total_;
  }
}

bool Simulator::step(TimePoint until) {
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (auto it = cancelled_.find(top.seq); it != cancelled_.end()) {
      cancelled_.erase(it);
      --cancelled_in_queue_;
      queue_.pop();
      continue;
    }
    if (top.when > until) return false;
    // Move the callback out before popping; the callback may schedule more
    // events (mutating the heap) while it runs.
    Entry entry = std::move(const_cast<Entry&>(top));
    queue_.pop();
    now_ = entry.when;
    ++executed_;
    entry.cb();
    return true;
  }
  return false;
}

std::size_t Simulator::run(TimePoint until) {
  std::size_t n = 0;
  while (step(until)) ++n;
  if (now_ < until && until != TimePoint::max()) now_ = until;
  return n;
}

}  // namespace stob::sim
