#include "util/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace stob::log {

namespace {

std::atomic<Level> g_level{Level::Warn};

const char* level_name(Level lvl) {
  switch (lvl) {
    case Level::Trace: return "TRACE";
    case Level::Debug: return "DEBUG";
    case Level::Info: return "INFO";
    case Level::Warn: return "WARN";
    case Level::Error: return "ERROR";
    case Level::Off: return "OFF";
  }
  return "?";
}

}  // namespace

Level level() { return g_level.load(std::memory_order_relaxed); }
void set_level(Level lvl) { g_level.store(lvl, std::memory_order_relaxed); }

void write(Level lvl, std::string_view component, std::string_view message) {
  if (lvl < level()) return;
  // Serialise whole lines: experiment-engine workers log concurrently, and
  // without this their fragments interleave mid-line.
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::cerr << "[" << level_name(lvl) << "] " << component << ": " << message << '\n';
}

}  // namespace stob::log
