# Empty dependencies file for test_wf.
# This may be replaced when dependencies are built.
