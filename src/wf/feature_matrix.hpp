// Contiguous row-major feature storage for the WF attack engine.
//
// One allocation for the whole dataset (rows x cols doubles) instead of a
// std::vector per sample: rows are cache-line-contiguous, a fold's training
// subset is a single gather, and batch kernels (forest prediction, leaf
// k-NN) can stream it. Rows are handed out as std::span, so classifiers
// never see the storage layout.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace stob::wf {

class FeatureMatrix {
 public:
  FeatureMatrix() = default;
  /// rows x cols matrix, zero-filled.
  FeatureMatrix(std::size_t rows, std::size_t cols) : cols_(cols), data_(rows * cols, 0.0) {}

  /// Copy a ragged row-of-vectors dataset into contiguous storage. All rows
  /// must have the same width.
  static FeatureMatrix from_rows(const std::vector<std::vector<double>>& rows);

  std::size_t rows() const { return cols_ == 0 ? 0 : data_.size() / cols_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<double> row(std::size_t r) { return {data_.data() + r * cols_, cols_}; }
  double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }
  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  const double* data() const { return data_.data(); }

  /// Set the width of an empty matrix (before the first append_row).
  void set_cols(std::size_t cols);

  /// Append one row (must match cols(); sets cols() on a fresh matrix).
  void append_row(std::span<const double> values);

  /// New matrix holding rows `indices`, in order (fold/train-set gather).
  FeatureMatrix gathered(std::span<const std::size_t> indices) const;

  friend bool operator==(const FeatureMatrix&, const FeatureMatrix&) = default;

 private:
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace stob::wf
