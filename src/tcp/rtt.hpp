// RFC 6298 RTT estimation and RTO computation.
#pragma once

#include "util/units.hpp"

namespace stob::tcp {

class RttEstimator {
 public:
  struct Config {
    Duration min_rto = Duration::millis(200);  // Linux's TCP_RTO_MIN
    Duration max_rto = Duration::seconds(60);
    Duration initial_rto = Duration::seconds(1);
  };

  RttEstimator() : RttEstimator(Config{}) {}
  explicit RttEstimator(Config cfg) : cfg_(cfg), rto_(cfg.initial_rto) {}

  /// Incorporate a measured RTT sample (Karn's rule: callers must only pass
  /// samples from segments that were not retransmitted).
  void add_sample(Duration rtt);

  /// Exponential backoff after a timeout.
  void backoff();

  bool has_sample() const { return has_sample_; }
  Duration srtt() const { return srtt_; }
  Duration rttvar() const { return rttvar_; }
  Duration rto() const { return rto_; }
  Duration min_rtt() const { return min_rtt_; }

 private:
  Config cfg_;
  bool has_sample_ = false;
  Duration srtt_;
  Duration rttvar_;
  Duration rto_;
  Duration min_rtt_ = Duration::seconds(3600);
};

/// Linux-style TSO autosizing: aim for ~1ms of data at the pacing rate,
/// clamped to [min_segs * mss, tso_max] and quantised to whole MSS units.
/// With no pacing rate (unpaced flows), returns tso_max.
Bytes tso_autosize(DataRate pacing_rate, Bytes mss, Bytes tso_max,
                   Duration target = Duration::millis(1), int min_segs = 2);

}  // namespace stob::tcp
