// CART decision tree for classification (Gini impurity, exact threshold
// search over sorted feature values, per-node random feature subsampling as
// used inside random forests).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace stob::wf {

/// Row-major dataset view: rows[i] is a feature vector, labels[i] its class
/// (0..num_classes-1).
struct TrainView {
  std::span<const std::vector<double>> rows;
  std::span<const int> labels;
  int num_classes = 0;
};

class DecisionTree {
 public:
  struct Config {
    int max_depth = 32;
    std::size_t min_samples_split = 2;
    std::size_t min_samples_leaf = 1;
    /// Features examined per split; 0 = floor(sqrt(F)) (forest default).
    std::size_t max_features = 0;
  };

  DecisionTree() : DecisionTree(Config{}) {}
  explicit DecisionTree(Config cfg) : cfg_(cfg) {}

  /// Fit on the (optionally bootstrapped) index subset of `view`.
  void fit(const TrainView& view, std::span<const std::size_t> indices, Rng& rng);

  /// Predicted class for one feature vector.
  int predict(std::span<const double> x) const;

  /// Per-class probability estimate (leaf class distribution).
  std::vector<double> predict_proba(std::span<const double> x) const;

  /// Id of the leaf the sample lands in (k-FP uses leaf co-occurrence as a
  /// similarity measure).
  std::uint32_t leaf_id(std::span<const double> x) const;

  std::size_t node_count() const { return nodes_.size(); }
  int depth() const { return depth_; }
  bool trained() const { return !nodes_.empty(); }

 private:
  struct Node {
    // Internal nodes: feature/threshold and child links. Leaves: class
    // distribution offset.
    std::int32_t feature = -1;       // -1 marks a leaf
    double threshold = 0.0;
    std::uint32_t left = 0;
    std::uint32_t right = 0;
    std::int32_t majority = 0;       // cached argmax of the distribution
    std::uint32_t dist_offset = 0;   // into dists_ (leaves only)
  };

  std::uint32_t build(const TrainView& view, std::vector<std::size_t>& idx, std::size_t lo,
                      std::size_t hi, int depth, Rng& rng);
  std::uint32_t make_leaf(const TrainView& view, std::span<const std::size_t> idx);
  const Node& descend(std::span<const double> x) const;

  Config cfg_;
  int num_classes_ = 0;
  int depth_ = 0;
  std::vector<Node> nodes_;
  std::vector<double> dists_;  // flattened per-leaf class distributions
};

}  // namespace stob::wf
