file(REMOVE_RECURSE
  "CMakeFiles/test_stack.dir/test_stack.cpp.o"
  "CMakeFiles/test_stack.dir/test_stack.cpp.o.d"
  "test_stack"
  "test_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
