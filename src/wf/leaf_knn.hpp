// Blocked leaf-agreement kernel for k-FP's k-NN stage.
//
// k-FP measures similarity between two samples as the number of trees in
// which they fall into the same leaf (a Hamming-style distance over the
// uint32 leaf-id vectors produced by RandomForest::leaf_batch). Both the
// closed-world k-NN mode and the open-world classifier spend most of their
// time in this all-pairs count, so it lives here as a tiled train x query
// kernel: a block of training fingerprints stays cache-resident while a
// block of queries streams over it. Counts are exact integers, so results
// are identical to the naive per-pair loop.
#pragma once

#include <cstdint>
#include <span>

namespace stob::wf {

/// counts[i] = #trees where `query` and training row i share a leaf.
/// train_leaves is row-major n_train x trees (RandomForest::leaf_batch
/// layout); query holds one row of `trees` entries; counts has n_train
/// entries.
void leaf_match_counts(std::span<const std::uint32_t> train_leaves, std::size_t n_train,
                       std::span<const std::uint32_t> query, std::span<int> counts);

/// Full n_query x n_train agreement matrix (row-major, one row per query),
/// tiled so a train block is reused across a block of queries.
void leaf_match_matrix(std::span<const std::uint32_t> train_leaves, std::size_t n_train,
                       std::span<const std::uint32_t> query_leaves, std::size_t n_query,
                       std::size_t trees, std::span<int> counts);

}  // namespace stob::wf
