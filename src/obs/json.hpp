// Minimal JSON string escaping shared by every obs text artifact (run
// manifests, trace_event exports, the results journal).
//
// The escaper emits `\uXXXX` for all control and non-ASCII bytes, so
// output is provably 7-bit regardless of what bytes a config string or a
// captured stderr tail carries (pinned by a hostile-string golden test in
// test_obs). The unescaper inverts exactly that dialect — enough to read
// back our own journal lines, not a general JSON parser.
#pragma once

#include <string>
#include <string_view>

namespace stob::obs {

/// Append `s` JSON-escaped (no surrounding quotes) to `out`.
void json_escape(std::string& out, std::string_view s);

std::string json_escape(std::string_view s);

/// Invert json_escape: handles \" \\ \/ \n \r \t \b \f and \uXXXX (code
/// points < 0x100 decode to the raw byte; higher ones are dropped — our
/// own escaper never emits them).
std::string json_unescape(std::string_view s);

}  // namespace stob::obs
